//===- jit/KernelCache.h - Content-addressed kernel store -------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk half of the JIT's kernel cache. Kernels are content-
/// addressed: the key hashes the sealed LIR's textual serialization
/// (printLIR — deterministic by construction, it is what the lir golden
/// tests pin) together with every emission option that changes the
/// generated C (thread pin, OpenMP flag) and the kernel ABI version.
/// Identical programs therefore share one compile across runs and
/// processes; any change to the IR printer, the emitter, or the ABI
/// changes the key or the manifest version and can never load a stale
/// object against mismatched expectations.
///
/// Layout of the cache directory:
///   MANIFEST            "hac-kernel-cache <version>" — purged wholesale
///                       on mismatch (emitter/ABI generation changes)
///   <key16>.so          the compiled kernel
///   <key16>.meta        key + symbol echo; a corrupt or half-written
///                       pair is unlinked and recompiled, never loaded
///
/// Eviction is LRU by mtime under a byte cap (HAC_JIT_CACHE_MB):
/// lookups touch their entry, inserts evict oldest-first until under
/// the cap.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_JIT_KERNELCACHE_H
#define HAC_JIT_KERNELCACHE_H

#include <cstdint>
#include <string>

namespace hac {
namespace jit {

/// Bumped whenever the generated kernel ABI or the meaning of cached
/// bytes changes; part of both the content hash and the MANIFEST.
constexpr unsigned KernelAbiVersion = 1;

/// A content key for one kernel: FNV-1a 64 over the LIR text and the
/// emission options.
struct KernelKey {
  uint64_t H = 0;
  /// 16 lowercase hex digits; the cache file basename.
  std::string hex() const;
};

/// Derives the key for a sealed program's printLIR text compiled with
/// \p Threads (0 = serial) and \p OpenMP.
KernelKey makeKernelKey(const std::string &LirText, unsigned Threads,
                        bool OpenMP);

/// Counters mirrored onto the jit.* trace counters by the compiler.
struct KernelCacheStats {
  uint64_t Hits = 0;      ///< valid disk entries reused
  uint64_t Misses = 0;    ///< lookups that found nothing usable
  uint64_t Evictions = 0; ///< entries removed by the size cap
  uint64_t Corrupt = 0;   ///< entries unlinked as unreadable/mismatched
};

/// The on-disk store. Not internally synchronized — the owning
/// JitCompiler serializes access.
class KernelCache {
public:
  struct Config {
    std::string Dir;                   ///< cache directory (created lazily)
    uint64_t MaxBytes = 256ull << 20;  ///< LRU size cap
  };

  explicit KernelCache(Config C);

  /// Path of a valid cached object for \p Key, or "" on a miss. A
  /// corrupt pair (unreadable meta, key/symbol mismatch, missing or
  /// non-ELF .so) is unlinked, counted, and reported as a miss. Hits
  /// touch the entry's mtime.
  std::string lookup(const KernelKey &Key, const std::string &Symbol);

  /// Where \p Key's object lives inside the cache directory.
  std::string soPathFor(const KernelKey &Key) const;

  /// Publishes an entry: moves the compiled object from \p SrcSo
  /// (a scratch staging path — the compiler dlopens it *there*, under
  /// a unique name, before committing) into soPathFor(), writes the
  /// meta sidecar, and enforces the size cap (never evicting the entry
  /// just committed). Best-effort: a failed move leaves the kernel
  /// un-cached but the caller's loaded copy stays valid.
  void commit(const KernelKey &Key, const std::string &Symbol,
              const std::string &SrcSo);

  /// Drops \p Key's pair — called when a cached object fails to
  /// dlopen/dlsym so the next run recompiles instead of re-failing.
  void invalidate(const KernelKey &Key);

  const KernelCacheStats &stats() const { return Stats; }
  const std::string &dir() const { return Dir; }

private:
  void ensureDir();
  void enforceCap(const std::string &Keep);

  std::string Dir;
  uint64_t MaxBytes;
  bool Ready = false; ///< directory exists and MANIFEST validated
  KernelCacheStats Stats;
};

} // namespace jit
} // namespace hac

#endif // HAC_JIT_KERNELCACHE_H
