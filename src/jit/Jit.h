//===- jit/Jit.h - JIT modes, env knobs, and kernel ABI ---------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of the native JIT backend: the execution-tier
/// policy (off / sync / async), the generated kernel's function type,
/// and the strict environment-variable parsers (HAC_JIT,
/// HAC_JIT_CACHE, HAC_JIT_CACHE_MB) following the repo's
/// strtol+clamp+warning convention — garbage never silently changes
/// behavior, it warns and keeps the default.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_JIT_JIT_H
#define HAC_JIT_JIT_H

#include <cstdint>
#include <string>

namespace hac {
namespace jit {

/// When native kernels run in place of the LIR evaluator.
enum class JitMode {
  Off,  ///< always interpret (the default)
  Sync, ///< compile before the first run; every run is native
  Async ///< first runs interpret while cc runs in the background, then
        ///< hot-swap to native once the kernel is ready
};

/// Strict parse of a -jit= / HAC_JIT value. Accepts exactly "off",
/// "sync", "async" (and "0"/"1" as off/sync for scripting ergonomics).
/// Returns false on anything else, leaving \p M untouched.
bool parseJitMode(const char *S, JitMode &M);

/// The HAC_JIT environment policy: parseJitMode over the variable,
/// warning (`hac: warning: HAC_JIT='...' is not off|sync|async; JIT
/// disabled`) and returning Off on garbage or when unset.
JitMode jitModeFromEnv();

/// The on-disk kernel cache directory: HAC_JIT_CACHE when set and
/// non-empty, else `$HOME/.cache/hacc/kernels` (or a scratch-local
/// fallback when HOME is unset).
std::string cacheDirFromEnv();

/// The cache size cap in bytes, from HAC_JIT_CACHE_MB. Strict integer
/// parse: garbage warns and keeps the default of 256 MB; values clamp
/// to [1, 65536] MB with a warning.
uint64_t cacheBytesFromEnv();

/// The generated kernel ABI (see emitKernelC): target storage, input
/// storage in CEmitResult::InputNames order, the caller's defined-bits
/// bitmap (may be null), and the 8-slot ExecStats counter block the
/// kernel adds into on every exit path.
using KernelFn = int (*)(double *target, const double *const *inputs,
                         unsigned char *defined, unsigned long long *stats);

/// Indices of the kernel's stats out-parameter, matching ExecStats.
enum KernelStat {
  KS_Loads = 0,
  KS_Stores = 1,
  KS_RingSaves = 2,
  KS_SnapshotCopies = 3,
  KS_BoundsChecks = 4,
  KS_CollisionChecks = 5,
  KS_GuardEvals = 6,
  KS_FusedIters = 7,
  KS_Count = 8
};

} // namespace jit
} // namespace hac

#endif // HAC_JIT_JIT_H
