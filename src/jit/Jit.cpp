//===- jit/Jit.cpp - JIT mode and env knob parsing ------------------------===//

#include "jit/Jit.h"

#include "jit/NativeBuild.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace hac;
using namespace hac::jit;

bool jit::parseJitMode(const char *S, JitMode &M) {
  if (!S)
    return false;
  if (std::strcmp(S, "off") == 0 || std::strcmp(S, "0") == 0) {
    M = JitMode::Off;
    return true;
  }
  if (std::strcmp(S, "sync") == 0 || std::strcmp(S, "1") == 0) {
    M = JitMode::Sync;
    return true;
  }
  if (std::strcmp(S, "async") == 0) {
    M = JitMode::Async;
    return true;
  }
  return false;
}

JitMode jit::jitModeFromEnv() {
  const char *Env = std::getenv("HAC_JIT");
  if (!Env || !*Env)
    return JitMode::Off;
  JitMode M = JitMode::Off;
  if (!parseJitMode(Env, M)) {
    std::fprintf(stderr,
                 "hac: warning: HAC_JIT='%s' is not off|sync|async; "
                 "JIT disabled\n",
                 Env);
    return JitMode::Off;
  }
  return M;
}

std::string jit::cacheDirFromEnv() {
  if (const char *Env = std::getenv("HAC_JIT_CACHE"); Env && *Env)
    return Env;
  if (const char *Home = std::getenv("HOME"); Home && *Home)
    return std::string(Home) + "/.cache/hacc/kernels";
  // No HOME (daemons, bare CI shells): keep kernels next to the other
  // per-process scratch so they are still cleaned up.
  return scratchDir() + "/kernels";
}

uint64_t jit::cacheBytesFromEnv() {
  constexpr uint64_t DefaultMB = 256, MinMB = 1, MaxMB = 65536;
  const char *Env = std::getenv("HAC_JIT_CACHE_MB");
  if (!Env || !*Env)
    return DefaultMB << 20;
  char *End = nullptr;
  errno = 0;
  long N = std::strtol(Env, &End, 10);
  if (errno != 0 || End == Env || *End != '\0') {
    std::fprintf(stderr,
                 "hac: warning: HAC_JIT_CACHE_MB='%s' is not an integer; "
                 "using the default of %llu\n",
                 Env, static_cast<unsigned long long>(DefaultMB));
    return DefaultMB << 20;
  }
  if (N < static_cast<long>(MinMB)) {
    std::fprintf(stderr, "hac: warning: HAC_JIT_CACHE_MB=%ld clamped to 1\n",
                 N);
    return MinMB << 20;
  }
  if (N > static_cast<long>(MaxMB)) {
    std::fprintf(stderr,
                 "hac: warning: HAC_JIT_CACHE_MB=%ld clamped to 65536\n", N);
    return MaxMB << 20;
  }
  return static_cast<uint64_t>(N) << 20;
}
