//===- ast/ASTUtils.cpp - Clone, equality, free variables -----------------===//

#include "ast/ASTUtils.h"

#include "support/Casting.h"

using namespace hac;

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

static std::vector<ExprPtr> cloneList(const std::vector<ExprPtr> &Elems) {
  std::vector<ExprPtr> Result;
  Result.reserve(Elems.size());
  for (const ExprPtr &E : Elems)
    Result.push_back(cloneExpr(E.get()));
  return Result;
}

static std::vector<LetBind> cloneBinds(const std::vector<LetBind> &Binds) {
  std::vector<LetBind> Result;
  Result.reserve(Binds.size());
  for (const LetBind &B : Binds)
    Result.emplace_back(B.Name, cloneExpr(B.Value.get()), B.Loc);
  return Result;
}

static std::vector<CompQual> cloneQuals(const std::vector<CompQual> &Quals) {
  std::vector<CompQual> Result;
  Result.reserve(Quals.size());
  for (const CompQual &Q : Quals) {
    switch (Q.kind()) {
    case CompQual::Kind::Generator:
      Result.push_back(
          CompQual::makeGenerator(Q.var(), cloneExpr(Q.source()), Q.loc()));
      break;
    case CompQual::Kind::Guard:
      Result.push_back(CompQual::makeGuard(cloneExpr(Q.cond()), Q.loc()));
      break;
    case CompQual::Kind::LetQual:
      Result.push_back(CompQual::makeLet(cloneBinds(Q.binds()), Q.loc()));
      break;
    }
  }
  return Result;
}

ExprPtr hac::cloneExpr(const Expr *E) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case ExprKind::IntLit:
    return std::make_unique<IntLitExpr>(cast<IntLitExpr>(E)->value(),
                                        E->loc());
  case ExprKind::FloatLit:
    return std::make_unique<FloatLitExpr>(cast<FloatLitExpr>(E)->value(),
                                          E->loc());
  case ExprKind::BoolLit:
    return std::make_unique<BoolLitExpr>(cast<BoolLitExpr>(E)->value(),
                                         E->loc());
  case ExprKind::Var:
    return std::make_unique<VarExpr>(cast<VarExpr>(E)->name(), E->loc());
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return std::make_unique<UnaryExpr>(U->op(), cloneExpr(U->operand()),
                                       E->loc());
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return std::make_unique<BinaryExpr>(B->op(), cloneExpr(B->lhs()),
                                        cloneExpr(B->rhs()), E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return std::make_unique<IfExpr>(cloneExpr(I->cond()),
                                    cloneExpr(I->thenExpr()),
                                    cloneExpr(I->elseExpr()), E->loc());
  }
  case ExprKind::Tuple:
    return std::make_unique<TupleExpr>(cloneList(cast<TupleExpr>(E)->elems()),
                                       E->loc());
  case ExprKind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    return std::make_unique<LambdaExpr>(L->params(), cloneExpr(L->body()),
                                        E->loc());
  }
  case ExprKind::Apply: {
    const auto *A = cast<ApplyExpr>(E);
    return std::make_unique<ApplyExpr>(cloneExpr(A->fn()),
                                       cloneList(A->args()), E->loc());
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    return std::make_unique<LetExpr>(L->letKind(), cloneBinds(L->binds()),
                                     cloneExpr(L->body()), E->loc());
  }
  case ExprKind::Range: {
    const auto *R = cast<RangeExpr>(E);
    return std::make_unique<RangeExpr>(cloneExpr(R->lo()),
                                       cloneExpr(R->second()),
                                       cloneExpr(R->hi()), E->loc());
  }
  case ExprKind::List:
    return std::make_unique<ListExpr>(cloneList(cast<ListExpr>(E)->elems()),
                                      E->loc());
  case ExprKind::Comp: {
    const auto *C = cast<CompExpr>(E);
    return std::make_unique<CompExpr>(cloneExpr(C->head()),
                                      cloneQuals(C->quals()), C->isNested(),
                                      E->loc());
  }
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(E);
    return std::make_unique<SvPairExpr>(cloneExpr(P->subscript()),
                                        cloneExpr(P->value()), E->loc());
  }
  case ExprKind::ArraySub: {
    const auto *S = cast<ArraySubExpr>(E);
    return std::make_unique<ArraySubExpr>(cloneExpr(S->base()),
                                          cloneExpr(S->index()), E->loc());
  }
  case ExprKind::MakeArray: {
    const auto *M = cast<MakeArrayExpr>(E);
    return std::make_unique<MakeArrayExpr>(cloneExpr(M->bounds()),
                                           cloneExpr(M->svList()), E->loc());
  }
  case ExprKind::AccumArray: {
    const auto *A = cast<AccumArrayExpr>(E);
    return std::make_unique<AccumArrayExpr>(
        cloneExpr(A->fn()), cloneExpr(A->init()), cloneExpr(A->bounds()),
        cloneExpr(A->svList()), E->loc());
  }
  case ExprKind::BigUpd: {
    const auto *U = cast<BigUpdExpr>(E);
    return std::make_unique<BigUpdExpr>(cloneExpr(U->base()),
                                        cloneExpr(U->svList()), E->loc());
  }
  case ExprKind::ForceElements:
    return std::make_unique<ForceElementsExpr>(
        cloneExpr(cast<ForceElementsExpr>(E)->arg()), E->loc());
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

static bool listEquals(const std::vector<ExprPtr> &A,
                       const std::vector<ExprPtr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!exprEquals(A[I].get(), B[I].get()))
      return false;
  return true;
}

static bool bindsEqual(const std::vector<LetBind> &A,
                       const std::vector<LetBind> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (A[I].Name != B[I].Name ||
        !exprEquals(A[I].Value.get(), B[I].Value.get()))
      return false;
  return true;
}

static bool qualsEqual(const std::vector<CompQual> &A,
                       const std::vector<CompQual> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    if (A[I].kind() != B[I].kind())
      return false;
    switch (A[I].kind()) {
    case CompQual::Kind::Generator:
      if (A[I].var() != B[I].var() ||
          !exprEquals(A[I].source(), B[I].source()))
        return false;
      break;
    case CompQual::Kind::Guard:
      if (!exprEquals(A[I].cond(), B[I].cond()))
        return false;
      break;
    case CompQual::Kind::LetQual:
      if (!bindsEqual(A[I].binds(), B[I].binds()))
        return false;
      break;
    }
  }
  return true;
}

bool hac::exprEquals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::IntLit:
    return cast<IntLitExpr>(A)->value() == cast<IntLitExpr>(B)->value();
  case ExprKind::FloatLit:
    return cast<FloatLitExpr>(A)->value() == cast<FloatLitExpr>(B)->value();
  case ExprKind::BoolLit:
    return cast<BoolLitExpr>(A)->value() == cast<BoolLitExpr>(B)->value();
  case ExprKind::Var:
    return cast<VarExpr>(A)->name() == cast<VarExpr>(B)->name();
  case ExprKind::Unary: {
    const auto *UA = cast<UnaryExpr>(A), *UB = cast<UnaryExpr>(B);
    return UA->op() == UB->op() && exprEquals(UA->operand(), UB->operand());
  }
  case ExprKind::Binary: {
    const auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && exprEquals(BA->lhs(), BB->lhs()) &&
           exprEquals(BA->rhs(), BB->rhs());
  }
  case ExprKind::If: {
    const auto *IA = cast<IfExpr>(A), *IB = cast<IfExpr>(B);
    return exprEquals(IA->cond(), IB->cond()) &&
           exprEquals(IA->thenExpr(), IB->thenExpr()) &&
           exprEquals(IA->elseExpr(), IB->elseExpr());
  }
  case ExprKind::Tuple:
    return listEquals(cast<TupleExpr>(A)->elems(),
                      cast<TupleExpr>(B)->elems());
  case ExprKind::Lambda: {
    const auto *LA = cast<LambdaExpr>(A), *LB = cast<LambdaExpr>(B);
    return LA->params() == LB->params() && exprEquals(LA->body(), LB->body());
  }
  case ExprKind::Apply: {
    const auto *AA = cast<ApplyExpr>(A), *AB = cast<ApplyExpr>(B);
    return exprEquals(AA->fn(), AB->fn()) && listEquals(AA->args(), AB->args());
  }
  case ExprKind::Let: {
    const auto *LA = cast<LetExpr>(A), *LB = cast<LetExpr>(B);
    return LA->letKind() == LB->letKind() &&
           bindsEqual(LA->binds(), LB->binds()) &&
           exprEquals(LA->body(), LB->body());
  }
  case ExprKind::Range: {
    const auto *RA = cast<RangeExpr>(A), *RB = cast<RangeExpr>(B);
    return exprEquals(RA->lo(), RB->lo()) &&
           exprEquals(RA->second(), RB->second()) &&
           exprEquals(RA->hi(), RB->hi());
  }
  case ExprKind::List:
    return listEquals(cast<ListExpr>(A)->elems(), cast<ListExpr>(B)->elems());
  case ExprKind::Comp: {
    const auto *CA = cast<CompExpr>(A), *CB = cast<CompExpr>(B);
    return CA->isNested() == CB->isNested() &&
           exprEquals(CA->head(), CB->head()) &&
           qualsEqual(CA->quals(), CB->quals());
  }
  case ExprKind::SvPair: {
    const auto *PA = cast<SvPairExpr>(A), *PB = cast<SvPairExpr>(B);
    return exprEquals(PA->subscript(), PB->subscript()) &&
           exprEquals(PA->value(), PB->value());
  }
  case ExprKind::ArraySub: {
    const auto *SA = cast<ArraySubExpr>(A), *SB = cast<ArraySubExpr>(B);
    return exprEquals(SA->base(), SB->base()) &&
           exprEquals(SA->index(), SB->index());
  }
  case ExprKind::MakeArray: {
    const auto *MA = cast<MakeArrayExpr>(A), *MB = cast<MakeArrayExpr>(B);
    return exprEquals(MA->bounds(), MB->bounds()) &&
           exprEquals(MA->svList(), MB->svList());
  }
  case ExprKind::AccumArray: {
    const auto *AA = cast<AccumArrayExpr>(A), *AB = cast<AccumArrayExpr>(B);
    return exprEquals(AA->fn(), AB->fn()) &&
           exprEquals(AA->init(), AB->init()) &&
           exprEquals(AA->bounds(), AB->bounds()) &&
           exprEquals(AA->svList(), AB->svList());
  }
  case ExprKind::BigUpd: {
    const auto *UA = cast<BigUpdExpr>(A), *UB = cast<BigUpdExpr>(B);
    return exprEquals(UA->base(), UB->base()) &&
           exprEquals(UA->svList(), UB->svList());
  }
  case ExprKind::ForceElements:
    return exprEquals(cast<ForceElementsExpr>(A)->arg(),
                      cast<ForceElementsExpr>(B)->arg());
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

namespace {
/// Recursive worker carrying the set of names currently bound.
void freeVarsImpl(const Expr *E, std::set<std::string> &Bound,
                  std::set<std::string> &Out);

void freeVarsBinds(const std::vector<LetBind> &Binds, bool Recursive,
                   std::set<std::string> &Bound, std::set<std::string> &Out,
                   std::vector<std::string> &Introduced) {
  // For recursive lets the names scope over the bound expressions too.
  if (Recursive) {
    for (const LetBind &B : Binds)
      if (Bound.insert(B.Name).second)
        Introduced.push_back(B.Name);
    for (const LetBind &B : Binds)
      freeVarsImpl(B.Value.get(), Bound, Out);
    return;
  }
  // Non-recursive: each bound expression sees only the previous bindings.
  for (const LetBind &B : Binds) {
    freeVarsImpl(B.Value.get(), Bound, Out);
    if (Bound.insert(B.Name).second)
      Introduced.push_back(B.Name);
  }
}

void freeVarsImpl(const Expr *E, std::set<std::string> &Bound,
                  std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::BoolLit:
    return;
  case ExprKind::Var: {
    const std::string &Name = cast<VarExpr>(E)->name();
    if (!Bound.count(Name))
      Out.insert(Name);
    return;
  }
  case ExprKind::Unary:
    freeVarsImpl(cast<UnaryExpr>(E)->operand(), Bound, Out);
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    freeVarsImpl(B->lhs(), Bound, Out);
    freeVarsImpl(B->rhs(), Bound, Out);
    return;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    freeVarsImpl(I->cond(), Bound, Out);
    freeVarsImpl(I->thenExpr(), Bound, Out);
    freeVarsImpl(I->elseExpr(), Bound, Out);
    return;
  }
  case ExprKind::Tuple:
    for (const ExprPtr &Elem : cast<TupleExpr>(E)->elems())
      freeVarsImpl(Elem.get(), Bound, Out);
    return;
  case ExprKind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    std::vector<std::string> Introduced;
    for (const std::string &P : L->params())
      if (Bound.insert(P).second)
        Introduced.push_back(P);
    freeVarsImpl(L->body(), Bound, Out);
    for (const std::string &P : Introduced)
      Bound.erase(P);
    return;
  }
  case ExprKind::Apply: {
    const auto *A = cast<ApplyExpr>(E);
    freeVarsImpl(A->fn(), Bound, Out);
    for (const ExprPtr &Arg : A->args())
      freeVarsImpl(Arg.get(), Bound, Out);
    return;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    std::vector<std::string> Introduced;
    freeVarsBinds(L->binds(), L->letKind() != LetKindEnum::Plain, Bound, Out,
                  Introduced);
    freeVarsImpl(L->body(), Bound, Out);
    for (const std::string &Name : Introduced)
      Bound.erase(Name);
    return;
  }
  case ExprKind::Range: {
    const auto *R = cast<RangeExpr>(E);
    freeVarsImpl(R->lo(), Bound, Out);
    freeVarsImpl(R->second(), Bound, Out);
    freeVarsImpl(R->hi(), Bound, Out);
    return;
  }
  case ExprKind::List:
    for (const ExprPtr &Elem : cast<ListExpr>(E)->elems())
      freeVarsImpl(Elem.get(), Bound, Out);
    return;
  case ExprKind::Comp: {
    const auto *C = cast<CompExpr>(E);
    std::vector<std::string> Introduced;
    for (const CompQual &Q : C->quals()) {
      switch (Q.kind()) {
      case CompQual::Kind::Generator:
        freeVarsImpl(Q.source(), Bound, Out);
        if (Bound.insert(Q.var()).second)
          Introduced.push_back(Q.var());
        break;
      case CompQual::Kind::Guard:
        freeVarsImpl(Q.cond(), Bound, Out);
        break;
      case CompQual::Kind::LetQual:
        freeVarsBinds(Q.binds(), /*Recursive=*/false, Bound, Out, Introduced);
        break;
      }
    }
    freeVarsImpl(C->head(), Bound, Out);
    for (const std::string &Name : Introduced)
      Bound.erase(Name);
    return;
  }
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(E);
    freeVarsImpl(P->subscript(), Bound, Out);
    freeVarsImpl(P->value(), Bound, Out);
    return;
  }
  case ExprKind::ArraySub: {
    const auto *S = cast<ArraySubExpr>(E);
    freeVarsImpl(S->base(), Bound, Out);
    freeVarsImpl(S->index(), Bound, Out);
    return;
  }
  case ExprKind::MakeArray: {
    const auto *M = cast<MakeArrayExpr>(E);
    freeVarsImpl(M->bounds(), Bound, Out);
    freeVarsImpl(M->svList(), Bound, Out);
    return;
  }
  case ExprKind::AccumArray: {
    const auto *A = cast<AccumArrayExpr>(E);
    freeVarsImpl(A->fn(), Bound, Out);
    freeVarsImpl(A->init(), Bound, Out);
    freeVarsImpl(A->bounds(), Bound, Out);
    freeVarsImpl(A->svList(), Bound, Out);
    return;
  }
  case ExprKind::BigUpd: {
    const auto *U = cast<BigUpdExpr>(E);
    freeVarsImpl(U->base(), Bound, Out);
    freeVarsImpl(U->svList(), Bound, Out);
    return;
  }
  case ExprKind::ForceElements:
    freeVarsImpl(cast<ForceElementsExpr>(E)->arg(), Bound, Out);
    return;
  }
}
} // namespace

void hac::collectFreeVars(const Expr *E, std::set<std::string> &Out) {
  std::set<std::string> Bound;
  freeVarsImpl(E, Bound, Out);
}

std::set<std::string> hac::freeVars(const Expr *E) {
  std::set<std::string> Out;
  collectFreeVars(E, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

namespace {
/// Returns true if any binding in \p Binds introduces \p Name.
bool bindsIntroduce(const std::vector<LetBind> &Binds,
                    const std::string &Name) {
  for (const LetBind &B : Binds)
    if (B.Name == Name)
      return true;
  return false;
}
} // namespace

ExprPtr hac::substitute(const Expr *E, const std::string &Name,
                        const Expr *Replacement) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case ExprKind::Var:
    if (cast<VarExpr>(E)->name() == Name)
      return cloneExpr(Replacement);
    return cloneExpr(E);
  case ExprKind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    for (const std::string &P : L->params())
      if (P == Name)
        return cloneExpr(E); // shadowed
    return std::make_unique<LambdaExpr>(
        L->params(), substitute(L->body(), Name, Replacement), E->loc());
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    bool Shadowed = bindsIntroduce(L->binds(), Name);
    bool Recursive = L->letKind() != LetKindEnum::Plain;
    std::vector<LetBind> NewBinds;
    NewBinds.reserve(L->binds().size());
    // For a recursive let a shadowing binder hides Name everywhere; for a
    // plain let the bound expressions still see the outer Name until the
    // shadowing binding occurs. We conservatively treat plain lets the
    // same way when shadowed (callers only substitute fresh names).
    for (const LetBind &B : L->binds())
      NewBinds.emplace_back(B.Name,
                            (Shadowed && Recursive)
                                ? cloneExpr(B.Value.get())
                                : substitute(B.Value.get(), Name, Replacement),
                            B.Loc);
    ExprPtr Body = Shadowed ? cloneExpr(L->body())
                            : substitute(L->body(), Name, Replacement);
    return std::make_unique<LetExpr>(L->letKind(), std::move(NewBinds),
                                     std::move(Body), E->loc());
  }
  case ExprKind::Comp: {
    const auto *C = cast<CompExpr>(E);
    std::vector<CompQual> NewQuals;
    bool Shadowed = false;
    for (const CompQual &Q : C->quals()) {
      switch (Q.kind()) {
      case CompQual::Kind::Generator: {
        ExprPtr Src = Shadowed ? cloneExpr(Q.source())
                               : substitute(Q.source(), Name, Replacement);
        if (Q.var() == Name)
          Shadowed = true;
        NewQuals.push_back(
            CompQual::makeGenerator(Q.var(), std::move(Src), Q.loc()));
        break;
      }
      case CompQual::Kind::Guard:
        NewQuals.push_back(CompQual::makeGuard(
            Shadowed ? cloneExpr(Q.cond())
                     : substitute(Q.cond(), Name, Replacement),
            Q.loc()));
        break;
      case CompQual::Kind::LetQual: {
        std::vector<LetBind> NewBinds;
        for (const LetBind &B : Q.binds()) {
          NewBinds.emplace_back(B.Name,
                                Shadowed
                                    ? cloneExpr(B.Value.get())
                                    : substitute(B.Value.get(), Name,
                                                 Replacement),
                                B.Loc);
          if (B.Name == Name)
            Shadowed = true;
        }
        NewQuals.push_back(CompQual::makeLet(std::move(NewBinds), Q.loc()));
        break;
      }
      }
    }
    ExprPtr Head = Shadowed ? cloneExpr(C->head())
                            : substitute(C->head(), Name, Replacement);
    return std::make_unique<CompExpr>(std::move(Head), std::move(NewQuals),
                                      C->isNested(), E->loc());
  }
  default:
    break;
  }

  // Generic structural recursion for nodes without binders: clone the node
  // but substitute in each child. Implemented via clone-and-patch on the
  // handful of remaining kinds.
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::BoolLit:
    return cloneExpr(E);
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return std::make_unique<UnaryExpr>(
        U->op(), substitute(U->operand(), Name, Replacement), E->loc());
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return std::make_unique<BinaryExpr>(
        B->op(), substitute(B->lhs(), Name, Replacement),
        substitute(B->rhs(), Name, Replacement), E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return std::make_unique<IfExpr>(
        substitute(I->cond(), Name, Replacement),
        substitute(I->thenExpr(), Name, Replacement),
        substitute(I->elseExpr(), Name, Replacement), E->loc());
  }
  case ExprKind::Tuple: {
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : cast<TupleExpr>(E)->elems())
      Elems.push_back(substitute(Elem.get(), Name, Replacement));
    return std::make_unique<TupleExpr>(std::move(Elems), E->loc());
  }
  case ExprKind::Apply: {
    const auto *A = cast<ApplyExpr>(E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : A->args())
      Args.push_back(substitute(Arg.get(), Name, Replacement));
    return std::make_unique<ApplyExpr>(substitute(A->fn(), Name, Replacement),
                                       std::move(Args), E->loc());
  }
  case ExprKind::Range: {
    const auto *R = cast<RangeExpr>(E);
    return std::make_unique<RangeExpr>(
        substitute(R->lo(), Name, Replacement),
        R->second() ? substitute(R->second(), Name, Replacement) : nullptr,
        substitute(R->hi(), Name, Replacement), E->loc());
  }
  case ExprKind::List: {
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : cast<ListExpr>(E)->elems())
      Elems.push_back(substitute(Elem.get(), Name, Replacement));
    return std::make_unique<ListExpr>(std::move(Elems), E->loc());
  }
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(E);
    return std::make_unique<SvPairExpr>(
        substitute(P->subscript(), Name, Replacement),
        substitute(P->value(), Name, Replacement), E->loc());
  }
  case ExprKind::ArraySub: {
    const auto *S = cast<ArraySubExpr>(E);
    return std::make_unique<ArraySubExpr>(
        substitute(S->base(), Name, Replacement),
        substitute(S->index(), Name, Replacement), E->loc());
  }
  case ExprKind::MakeArray: {
    const auto *M = cast<MakeArrayExpr>(E);
    return std::make_unique<MakeArrayExpr>(
        substitute(M->bounds(), Name, Replacement),
        substitute(M->svList(), Name, Replacement), E->loc());
  }
  case ExprKind::AccumArray: {
    const auto *A = cast<AccumArrayExpr>(E);
    return std::make_unique<AccumArrayExpr>(
        substitute(A->fn(), Name, Replacement),
        substitute(A->init(), Name, Replacement),
        substitute(A->bounds(), Name, Replacement),
        substitute(A->svList(), Name, Replacement), E->loc());
  }
  case ExprKind::BigUpd: {
    const auto *U = cast<BigUpdExpr>(E);
    return std::make_unique<BigUpdExpr>(
        substitute(U->base(), Name, Replacement),
        substitute(U->svList(), Name, Replacement), E->loc());
  }
  case ExprKind::ForceElements:
    return std::make_unique<ForceElementsExpr>(
        substitute(cast<ForceElementsExpr>(E)->arg(), Name, Replacement),
        E->loc());
  case ExprKind::Var:
  case ExprKind::Lambda:
  case ExprKind::Let:
  case ExprKind::Comp:
    break; // handled above
  }
  assert(false && "unhandled expr kind in substitute");
  return nullptr;
}
