//===- ast/ASTPrinter.h - Pretty printer for the AST ------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints expressions back in (fully parenthesized where needed) surface
/// syntax. Round-trips through the parser: parse(print(e)) is structurally
/// equal to e, which the test suite checks.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_AST_ASTPRINTER_H
#define HAC_AST_ASTPRINTER_H

#include "ast/Expr.h"

#include <ostream>
#include <string>

namespace hac {

/// Writes the surface syntax of \p E to \p OS.
void printExpr(const Expr *E, std::ostream &OS);

/// Returns the surface syntax of \p E as a string.
std::string exprToString(const Expr *E);

} // namespace hac

#endif // HAC_AST_ASTPRINTER_H
