//===- ast/Expr.cpp - AST node anchors and names --------------------------===//

#include "ast/Expr.h"

using namespace hac;

// Out-of-line virtual destructor anchors the vtable in this file.
Expr::~Expr() = default;

const char *hac::exprKindName(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::IntLit:
    return "IntLit";
  case ExprKind::FloatLit:
    return "FloatLit";
  case ExprKind::BoolLit:
    return "BoolLit";
  case ExprKind::Var:
    return "Var";
  case ExprKind::Unary:
    return "Unary";
  case ExprKind::Binary:
    return "Binary";
  case ExprKind::If:
    return "If";
  case ExprKind::Tuple:
    return "Tuple";
  case ExprKind::Lambda:
    return "Lambda";
  case ExprKind::Apply:
    return "Apply";
  case ExprKind::Let:
    return "Let";
  case ExprKind::Range:
    return "Range";
  case ExprKind::List:
    return "List";
  case ExprKind::Comp:
    return "Comp";
  case ExprKind::SvPair:
    return "SvPair";
  case ExprKind::ArraySub:
    return "ArraySub";
  case ExprKind::MakeArray:
    return "MakeArray";
  case ExprKind::AccumArray:
    return "AccumArray";
  case ExprKind::BigUpd:
    return "BigUpd";
  case ExprKind::ForceElements:
    return "ForceElements";
  }
  return "<invalid>";
}

const char *hac::binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Mod:
    return "%";
  case BinaryOpKind::Eq:
    return "==";
  case BinaryOpKind::Ne:
    return "/=";
  case BinaryOpKind::Lt:
    return "<";
  case BinaryOpKind::Le:
    return "<=";
  case BinaryOpKind::Gt:
    return ">";
  case BinaryOpKind::Ge:
    return ">=";
  case BinaryOpKind::And:
    return "&&";
  case BinaryOpKind::Or:
    return "||";
  case BinaryOpKind::Append:
    return "++";
  }
  return "<invalid-op>";
}

const char *hac::unaryOpSpelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Neg:
    return "-";
  case UnaryOpKind::Not:
    return "not";
  }
  return "<invalid-op>";
}
