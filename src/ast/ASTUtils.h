//===- ast/ASTUtils.h - Clone, equality, free variables ---------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural utilities over the AST: deep cloning (used by the TE
/// desugaring and node splitting), structural equality (used to detect
/// identical subscript expressions), free-variable computation (used by
/// the comprehension normalizer to find loop-invariant bindings), and
/// substitution.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_AST_ASTUTILS_H
#define HAC_AST_ASTUTILS_H

#include "ast/Expr.h"

#include <set>
#include <string>

namespace hac {

/// Deep-copies \p E, preserving source locations.
ExprPtr cloneExpr(const Expr *E);

/// True if \p A and \p B are structurally identical (same shape, same
/// names, same literal values). Source locations are ignored.
bool exprEquals(const Expr *A, const Expr *B);

/// Inserts the free variables of \p E into \p Out, respecting lambda, let,
/// and generator binders.
void collectFreeVars(const Expr *E, std::set<std::string> &Out);

/// Convenience wrapper returning the free-variable set directly.
std::set<std::string> freeVars(const Expr *E);

/// Returns a clone of \p E in which every free occurrence of \p Name is
/// replaced by a clone of \p Replacement. Does not rename binders, so the
/// caller must ensure \p Replacement's free variables are not captured
/// (all internal uses substitute fresh or loop-index names).
ExprPtr substitute(const Expr *E, const std::string &Name,
                   const Expr *Replacement);

} // namespace hac

#endif // HAC_AST_ASTUTILS_H
