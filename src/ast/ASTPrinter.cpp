//===- ast/ASTPrinter.cpp - Pretty printer for the AST --------------------===//

#include "ast/ASTPrinter.h"

#include "support/Casting.h"

#include <sstream>

using namespace hac;

namespace {

/// Binding powers used to decide where parentheses are required. Larger
/// binds tighter. Mirrors the parser's precedence table.
enum Precedence : int {
  PrecLowest = 0,
  PrecSvPair = 1,    // :=
  PrecOr = 2,        // ||
  PrecAnd = 3,       // &&
  PrecCompare = 4,   // == /= < <= > >=
  PrecAppend = 5,    // ++
  PrecAdd = 6,       // + -
  PrecMul = 7,       // * / %
  PrecUnary = 8,     // unary - and not
  PrecApply = 9,     // application
  PrecSubscript = 10 // a ! i
};

int binaryPrec(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Or:
    return PrecOr;
  case BinaryOpKind::And:
    return PrecAnd;
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne:
  case BinaryOpKind::Lt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Ge:
    return PrecCompare;
  case BinaryOpKind::Append:
    return PrecAppend;
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
    return PrecAdd;
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div:
  case BinaryOpKind::Mod:
    return PrecMul;
  }
  return PrecLowest;
}

class PrinterImpl {
public:
  explicit PrinterImpl(std::ostream &OS) : OS(OS) {}

  /// Prints \p E; wraps in parentheses if its natural precedence is lower
  /// than \p MinPrec.
  void print(const Expr *E, int MinPrec) {
    if (!E) {
      OS << "<null>";
      return;
    }
    int Prec = naturalPrec(E);
    bool Paren = Prec < MinPrec;
    if (Paren)
      OS << '(';
    printBare(E);
    if (Paren)
      OS << ')';
  }

private:
  std::ostream &OS;

  static int naturalPrec(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Binary:
      return binaryPrec(cast<BinaryExpr>(E)->op());
    case ExprKind::Unary:
      return PrecUnary;
    case ExprKind::Apply:
    case ExprKind::MakeArray:
    case ExprKind::AccumArray:
    case ExprKind::BigUpd:
    case ExprKind::ForceElements:
      return PrecApply;
    case ExprKind::ArraySub:
      return PrecSubscript;
    case ExprKind::SvPair:
      return PrecSvPair;
    case ExprKind::Lambda:
    case ExprKind::Let:
    case ExprKind::If:
      return PrecLowest;
    default:
      return PrecSubscript + 1; // atoms never need parens
    }
  }

  void printBinds(const std::vector<LetBind> &Binds) {
    bool First = true;
    for (const LetBind &B : Binds) {
      if (!First)
        OS << "; ";
      First = false;
      OS << B.Name << " = ";
      print(B.Value.get(), PrecLowest);
    }
  }

  void printQuals(const std::vector<CompQual> &Quals) {
    bool First = true;
    for (const CompQual &Q : Quals) {
      if (!First)
        OS << ", ";
      First = false;
      switch (Q.kind()) {
      case CompQual::Kind::Generator:
        OS << Q.var() << " <- ";
        print(Q.source(), PrecLowest);
        break;
      case CompQual::Kind::Guard:
        print(Q.cond(), PrecLowest);
        break;
      case CompQual::Kind::LetQual:
        OS << "let ";
        printBinds(Q.binds());
        break;
      }
    }
  }

  void printBare(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      OS << cast<IntLitExpr>(E)->value();
      return;
    case ExprKind::FloatLit: {
      std::ostringstream Tmp;
      Tmp << cast<FloatLitExpr>(E)->value();
      std::string S = Tmp.str();
      OS << S;
      // Ensure the literal re-lexes as a float.
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos &&
          S.find("inf") == std::string::npos &&
          S.find("nan") == std::string::npos)
        OS << ".0";
      return;
    }
    case ExprKind::BoolLit:
      OS << (cast<BoolLitExpr>(E)->value() ? "True" : "False");
      return;
    case ExprKind::Var:
      OS << cast<VarExpr>(E)->name();
      return;
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      OS << unaryOpSpelling(U->op());
      if (U->op() == UnaryOpKind::Not)
        OS << ' ';
      print(U->operand(), PrecUnary + 1);
      return;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int Prec = binaryPrec(B->op());
      // All operators print left-associatively.
      print(B->lhs(), Prec);
      OS << ' ' << binaryOpSpelling(B->op()) << ' ';
      print(B->rhs(), Prec + 1);
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      OS << "if ";
      print(I->cond(), PrecLowest);
      OS << " then ";
      print(I->thenExpr(), PrecLowest);
      OS << " else ";
      print(I->elseExpr(), PrecLowest);
      return;
    }
    case ExprKind::Tuple: {
      const auto *T = cast<TupleExpr>(E);
      OS << '(';
      for (unsigned I = 0; I != T->size(); ++I) {
        if (I)
          OS << ", ";
        print(T->elem(I), PrecLowest);
      }
      OS << ')';
      return;
    }
    case ExprKind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      OS << '\\';
      for (const std::string &P : L->params())
        OS << P << ' ';
      OS << ". ";
      print(L->body(), PrecLowest);
      return;
    }
    case ExprKind::Apply: {
      const auto *A = cast<ApplyExpr>(E);
      print(A->fn(), PrecApply);
      for (const ExprPtr &Arg : A->args()) {
        OS << ' ';
        print(Arg.get(), PrecApply + 1);
      }
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      switch (L->letKind()) {
      case LetKindEnum::Plain:
        OS << "let ";
        break;
      case LetKindEnum::Rec:
        OS << "letrec ";
        break;
      case LetKindEnum::RecStrict:
        OS << "letrec* ";
        break;
      }
      printBinds(L->binds());
      OS << " in ";
      print(L->body(), PrecLowest);
      return;
    }
    case ExprKind::Range: {
      const auto *R = cast<RangeExpr>(E);
      OS << '[';
      print(R->lo(), PrecLowest);
      if (R->hasSecond()) {
        OS << ", ";
        print(R->second(), PrecLowest);
      }
      OS << " .. ";
      print(R->hi(), PrecLowest);
      OS << ']';
      return;
    }
    case ExprKind::List: {
      const auto *L = cast<ListExpr>(E);
      OS << '[';
      for (unsigned I = 0; I != L->size(); ++I) {
        if (I)
          OS << ", ";
        print(L->elem(I), PrecLowest);
      }
      OS << ']';
      return;
    }
    case ExprKind::Comp: {
      const auto *C = cast<CompExpr>(E);
      OS << (C->isNested() ? "[* " : "[ ");
      print(C->head(), PrecLowest);
      OS << " | ";
      printQuals(C->quals());
      OS << (C->isNested() ? " *]" : " ]");
      return;
    }
    case ExprKind::SvPair: {
      const auto *P = cast<SvPairExpr>(E);
      print(P->subscript(), PrecSvPair + 1);
      OS << " := ";
      print(P->value(), PrecSvPair + 1);
      return;
    }
    case ExprKind::ArraySub: {
      const auto *S = cast<ArraySubExpr>(E);
      print(S->base(), PrecSubscript);
      OS << " ! ";
      print(S->index(), PrecSubscript + 1);
      return;
    }
    case ExprKind::MakeArray: {
      const auto *M = cast<MakeArrayExpr>(E);
      OS << "array ";
      print(M->bounds(), PrecApply + 1);
      OS << ' ';
      print(M->svList(), PrecApply + 1);
      return;
    }
    case ExprKind::AccumArray: {
      const auto *A = cast<AccumArrayExpr>(E);
      OS << "accumArray ";
      print(A->fn(), PrecApply + 1);
      OS << ' ';
      print(A->init(), PrecApply + 1);
      OS << ' ';
      print(A->bounds(), PrecApply + 1);
      OS << ' ';
      print(A->svList(), PrecApply + 1);
      return;
    }
    case ExprKind::BigUpd: {
      const auto *U = cast<BigUpdExpr>(E);
      OS << "bigupd ";
      print(U->base(), PrecApply + 1);
      OS << ' ';
      print(U->svList(), PrecApply + 1);
      return;
    }
    case ExprKind::ForceElements: {
      OS << "forceElements ";
      print(cast<ForceElementsExpr>(E)->arg(), PrecApply + 1);
      return;
    }
    }
  }
};

} // namespace

void hac::printExpr(const Expr *E, std::ostream &OS) {
  PrinterImpl(OS).print(E, PrecLowest);
}

std::string hac::exprToString(const Expr *E) {
  std::ostringstream OS;
  printExpr(E, OS);
  return OS.str();
}
