//===- ast/Expr.h - Surface AST for the mini-Haskell ------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the paper's source language: a small non-strict
/// functional language with Haskell array comprehensions, the paper's
/// syntactic extensions (`:=` subscript/value pairs, `letrec*`, nested
/// comprehensions `[* ... *]`, `bigupd`, `forceElements`), ranges, list
/// comprehensions with generators / guards / let qualifiers, and `where`
/// clauses (parsed as sugar for `let`).
///
/// Nodes use LLVM-style kind-based RTTI (see support/Casting.h) and own
/// their children through std::unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_AST_EXPR_H
#define HAC_AST_EXPR_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hac {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Discriminator for the Expr class hierarchy.
enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  BoolLit,
  Var,
  Unary,
  Binary,
  If,
  Tuple,
  Lambda,
  Apply,
  Let,
  Range,
  List,
  Comp,
  SvPair,
  ArraySub,
  MakeArray,
  AccumArray,
  BigUpd,
  ForceElements,
};

/// Returns a stable human-readable name for \p Kind ("IntLit", "Comp", ...).
const char *exprKindName(ExprKind Kind);

/// Base class of all expression nodes.
class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
  virtual ~Expr();

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Literals and variables
//===----------------------------------------------------------------------===//

/// Integer literal, e.g. `42`.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// Floating-point literal, e.g. `3.25`.
class FloatLitExpr : public Expr {
public:
  FloatLitExpr(double Value, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::FloatLit, Loc), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLit;
  }

private:
  double Value;
};

/// Boolean literal `True` / `False`.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }

private:
  bool Value;
};

/// Variable reference.
class VarExpr : public Expr {
public:
  explicit VarExpr(std::string Name, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Var, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  std::string Name;
};

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

enum class UnaryOpKind : uint8_t {
  Neg, ///< arithmetic negation `-e`
  Not, ///< boolean negation `not e`
};

enum class BinaryOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div, ///< real division on floats, truncating on ints
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Append, ///< list append `++`
};

/// Returns the surface spelling of a binary operator ("+", "++", ...).
const char *binaryOpSpelling(BinaryOpKind Op);
/// Returns the surface spelling of a unary operator.
const char *unaryOpSpelling(UnaryOpKind Op);

/// Unary operator application.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, ExprPtr Operand, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {
    assert(this->Operand && "unary operand must be non-null");
  }

  UnaryOpKind op() const { return Op; }
  const Expr *operand() const { return Operand.get(); }
  Expr *operand() { return Operand.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOpKind Op;
  ExprPtr Operand;
};

/// Binary operator application.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS,
             SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {
    assert(this->LHS && this->RHS && "binary operands must be non-null");
  }

  BinaryOpKind op() const { return Op; }
  const Expr *lhs() const { return LHS.get(); }
  Expr *lhs() { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }
  Expr *rhs() { return RHS.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOpKind Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// Conditional `if c then t else e`.
class IfExpr : public Expr {
public:
  IfExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *cond() const { return Cond.get(); }
  const Expr *thenExpr() const { return Then.get(); }
  const Expr *elseExpr() const { return Else.get(); }
  Expr *cond() { return Cond.get(); }
  Expr *thenExpr() { return Then.get(); }
  Expr *elseExpr() { return Else.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }

private:
  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else;
};

//===----------------------------------------------------------------------===//
// Compound values and functions
//===----------------------------------------------------------------------===//

/// Tuple construction `(e1, e2, ...)`; always has >= 2 elements.
class TupleExpr : public Expr {
public:
  TupleExpr(std::vector<ExprPtr> Elems, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Tuple, Loc), Elems(std::move(Elems)) {
    assert(this->Elems.size() >= 2 && "tuples have at least two elements");
  }

  unsigned size() const { return Elems.size(); }
  const Expr *elem(unsigned I) const { return Elems[I].get(); }
  Expr *elem(unsigned I) { return Elems[I].get(); }
  const std::vector<ExprPtr> &elems() const { return Elems; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Tuple; }

private:
  std::vector<ExprPtr> Elems;
};

/// Lambda abstraction `\x y . body`.
class LambdaExpr : public Expr {
public:
  LambdaExpr(std::vector<std::string> Params, ExprPtr Body,
             SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Lambda, Loc), Params(std::move(Params)),
        Body(std::move(Body)) {
    assert(!this->Params.empty() && "lambda needs at least one parameter");
  }

  const std::vector<std::string> &params() const { return Params; }
  const Expr *body() const { return Body.get(); }
  Expr *body() { return Body.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lambda; }

private:
  std::vector<std::string> Params;
  ExprPtr Body;
};

/// N-ary application `f e1 e2 ...`.
class ApplyExpr : public Expr {
public:
  ApplyExpr(ExprPtr Fn, std::vector<ExprPtr> Args, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Apply, Loc), Fn(std::move(Fn)), Args(std::move(Args)) {
    assert(!this->Args.empty() && "application needs at least one argument");
  }

  const Expr *fn() const { return Fn.get(); }
  Expr *fn() { return Fn.get(); }
  unsigned numArgs() const { return Args.size(); }
  const Expr *arg(unsigned I) const { return Args[I].get(); }
  Expr *arg(unsigned I) { return Args[I].get(); }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Apply; }

private:
  ExprPtr Fn;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Bindings
//===----------------------------------------------------------------------===//

/// One binding `name = expr` in a let / letrec / letrec* / where / let
/// qualifier.
struct LetBind {
  std::string Name;
  ExprPtr Value;
  SourceLoc Loc;

  LetBind(std::string Name, ExprPtr Value, SourceLoc Loc = SourceLoc())
      : Name(std::move(Name)), Value(std::move(Value)), Loc(Loc) {}
};

/// The three binding forms of the paper. LetrecStar is the paper's
/// `letrec*`: recursive bindings whose arrays are used in a strict context
/// — every binding is wrapped in `forceElements (fix ...)` (Section 2).
enum class LetKindEnum : uint8_t {
  Plain,     ///< `let` — non-recursive
  Rec,       ///< `letrec`
  RecStrict, ///< `letrec*`
};

/// `let/letrec/letrec* binds in body`.
class LetExpr : public Expr {
public:
  LetExpr(LetKindEnum LetKind, std::vector<LetBind> Binds, ExprPtr Body,
          SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Let, Loc), LetKind(LetKind), Binds(std::move(Binds)),
        Body(std::move(Body)) {
    assert(!this->Binds.empty() && "let needs at least one binding");
  }

  LetKindEnum letKind() const { return LetKind; }
  const std::vector<LetBind> &binds() const { return Binds; }
  std::vector<LetBind> &binds() { return Binds; }
  const Expr *body() const { return Body.get(); }
  Expr *body() { return Body.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }

private:
  LetKindEnum LetKind;
  std::vector<LetBind> Binds;
  ExprPtr Body;
};

//===----------------------------------------------------------------------===//
// Lists, ranges, comprehensions
//===----------------------------------------------------------------------===//

/// Arithmetic sequence `[lo..hi]` or `[lo,second..hi]`. The increment is
/// `second - lo` when Second is present, else 1.
class RangeExpr : public Expr {
public:
  RangeExpr(ExprPtr Lo, ExprPtr Second, ExprPtr Hi, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Range, Loc), Lo(std::move(Lo)),
        Second(std::move(Second)), Hi(std::move(Hi)) {
    assert(this->Lo && this->Hi && "range needs lo and hi");
  }

  const Expr *lo() const { return Lo.get(); }
  Expr *lo() { return Lo.get(); }
  /// Null when the range uses the default step of 1.
  const Expr *second() const { return Second.get(); }
  Expr *second() { return Second.get(); }
  const Expr *hi() const { return Hi.get(); }
  Expr *hi() { return Hi.get(); }
  bool hasSecond() const { return Second != nullptr; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Range; }

private:
  ExprPtr Lo;
  ExprPtr Second;
  ExprPtr Hi;
};

/// Explicit list `[e1, e2, ...]` (possibly empty).
class ListExpr : public Expr {
public:
  explicit ListExpr(std::vector<ExprPtr> Elems, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::List, Loc), Elems(std::move(Elems)) {}

  unsigned size() const { return Elems.size(); }
  const Expr *elem(unsigned I) const { return Elems[I].get(); }
  Expr *elem(unsigned I) { return Elems[I].get(); }
  const std::vector<ExprPtr> &elems() const { return Elems; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::List; }

private:
  std::vector<ExprPtr> Elems;
};

/// One qualifier in a comprehension: a generator `i <- list`, a boolean
/// guard, or a `let` qualifier binding local names.
class CompQual {
public:
  enum class Kind : uint8_t { Generator, Guard, LetQual };

  static CompQual makeGenerator(std::string Var, ExprPtr Source,
                                SourceLoc Loc = SourceLoc()) {
    CompQual Q;
    Q.QualKind = Kind::Generator;
    Q.Var = std::move(Var);
    Q.Source = std::move(Source);
    Q.Loc = Loc;
    return Q;
  }

  static CompQual makeGuard(ExprPtr Cond, SourceLoc Loc = SourceLoc()) {
    CompQual Q;
    Q.QualKind = Kind::Guard;
    Q.Source = std::move(Cond);
    Q.Loc = Loc;
    return Q;
  }

  static CompQual makeLet(std::vector<LetBind> Binds,
                          SourceLoc Loc = SourceLoc()) {
    CompQual Q;
    Q.QualKind = Kind::LetQual;
    Q.Binds = std::move(Binds);
    Q.Loc = Loc;
    return Q;
  }

  Kind kind() const { return QualKind; }
  SourceLoc loc() const { return Loc; }

  /// Generator accessors.
  const std::string &var() const {
    assert(QualKind == Kind::Generator);
    return Var;
  }
  const Expr *source() const {
    assert(QualKind == Kind::Generator);
    return Source.get();
  }
  Expr *source() {
    assert(QualKind == Kind::Generator);
    return Source.get();
  }

  /// Guard accessor.
  const Expr *cond() const {
    assert(QualKind == Kind::Guard);
    return Source.get();
  }
  Expr *cond() {
    assert(QualKind == Kind::Guard);
    return Source.get();
  }

  /// Let-qualifier accessors.
  const std::vector<LetBind> &binds() const {
    assert(QualKind == Kind::LetQual);
    return Binds;
  }
  std::vector<LetBind> &binds() {
    assert(QualKind == Kind::LetQual);
    return Binds;
  }

private:
  CompQual() = default;

  Kind QualKind = Kind::Guard;
  std::string Var;
  ExprPtr Source;
  std::vector<LetBind> Binds;
  SourceLoc Loc;
};

/// A list comprehension `[ head | quals ]`, or the paper's *nested*
/// comprehension `[* head | quals *]` whose head may itself contain `++`,
/// `let`/`where`, list literals, and further nested comprehensions —
/// describing a tree-shaped hierarchy of lists (Section 3.1).
class CompExpr : public Expr {
public:
  CompExpr(ExprPtr Head, std::vector<CompQual> Quals, bool IsNested,
           SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::Comp, Loc), Head(std::move(Head)),
        Quals(std::move(Quals)), Nested(IsNested) {
    assert(this->Head && "comprehension needs a head");
  }

  const Expr *head() const { return Head.get(); }
  Expr *head() { return Head.get(); }
  const std::vector<CompQual> &quals() const { return Quals; }
  std::vector<CompQual> &quals() { return Quals; }
  bool isNested() const { return Nested; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Comp; }

private:
  ExprPtr Head;
  std::vector<CompQual> Quals;
  bool Nested;
};

/// The paper's `s := v` subscript/value pair. Subscript is a scalar for
/// 1-D arrays or a tuple for multi-dimensional ones.
class SvPairExpr : public Expr {
public:
  SvPairExpr(ExprPtr Subscript, ExprPtr Value, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::SvPair, Loc), Subscript(std::move(Subscript)),
        Value(std::move(Value)) {}

  const Expr *subscript() const { return Subscript.get(); }
  Expr *subscript() { return Subscript.get(); }
  const Expr *value() const { return Value.get(); }
  Expr *value() { return Value.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::SvPair; }

private:
  ExprPtr Subscript;
  ExprPtr Value;
};

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

/// Array element selection `a ! i` (the index may be a tuple).
class ArraySubExpr : public Expr {
public:
  ArraySubExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::ArraySub, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}

  const Expr *base() const { return Base.get(); }
  Expr *base() { return Base.get(); }
  const Expr *index() const { return Index.get(); }
  Expr *index() { return Index.get(); }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArraySub;
  }

private:
  ExprPtr Base;
  ExprPtr Index;
};

/// Monolithic array constructor `array bounds svlist` (Section 3). Bounds
/// is `(lo, hi)` for 1-D or `((lo1,lo2),(hi1,hi2))` for 2-D, etc.
class MakeArrayExpr : public Expr {
public:
  MakeArrayExpr(ExprPtr Bounds, ExprPtr SvList, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::MakeArray, Loc), Bounds(std::move(Bounds)),
        SvList(std::move(SvList)) {}

  const Expr *bounds() const { return Bounds.get(); }
  Expr *bounds() { return Bounds.get(); }
  const Expr *svList() const { return SvList.get(); }
  Expr *svList() { return SvList.get(); }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::MakeArray;
  }

private:
  ExprPtr Bounds;
  ExprPtr SvList;
};

/// Accumulated array `accumArray f z bounds svlist` (Section 3): element
/// e starts at z and each pair (e, v) combines as f acc v, in list order.
/// The paper leaves the analysis of general accumulated arrays as future
/// work; our pipeline compiles the collision-free special case (each
/// element combined at most once) and falls back to the interpreter
/// otherwise.
class AccumArrayExpr : public Expr {
public:
  AccumArrayExpr(ExprPtr Fn, ExprPtr Init, ExprPtr Bounds, ExprPtr SvList,
                 SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::AccumArray, Loc), Fn(std::move(Fn)),
        Init(std::move(Init)), Bounds(std::move(Bounds)),
        SvList(std::move(SvList)) {}

  const Expr *fn() const { return Fn.get(); }
  Expr *fn() { return Fn.get(); }
  const Expr *init() const { return Init.get(); }
  Expr *init() { return Init.get(); }
  const Expr *bounds() const { return Bounds.get(); }
  Expr *bounds() { return Bounds.get(); }
  const Expr *svList() const { return SvList.get(); }
  Expr *svList() { return SvList.get(); }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::AccumArray;
  }

private:
  ExprPtr Fn;
  ExprPtr Init;
  ExprPtr Bounds;
  ExprPtr SvList;
};

/// Semi-monolithic update `bigupd a svlist` = foldl upd a svlist
/// (Section 9).
class BigUpdExpr : public Expr {
public:
  BigUpdExpr(ExprPtr Base, ExprPtr SvList, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::BigUpd, Loc), Base(std::move(Base)),
        SvList(std::move(SvList)) {}

  const Expr *base() const { return Base.get(); }
  Expr *base() { return Base.get(); }
  const Expr *svList() const { return SvList.get(); }
  Expr *svList() { return SvList.get(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::BigUpd; }

private:
  ExprPtr Base;
  ExprPtr SvList;
};

/// `forceElements a` — demands every element of the array, returning the
/// "strictified" array (bottom if any element is bottom; Section 2).
class ForceElementsExpr : public Expr {
public:
  explicit ForceElementsExpr(ExprPtr Arg, SourceLoc Loc = SourceLoc())
      : Expr(ExprKind::ForceElements, Loc), Arg(std::move(Arg)) {}

  const Expr *arg() const { return Arg.get(); }
  Expr *arg() { return Arg.get(); }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ForceElements;
  }

private:
  ExprPtr Arg;
};

//===----------------------------------------------------------------------===//
// Convenience factories (used heavily by tests and desugaring)
//===----------------------------------------------------------------------===//

inline ExprPtr makeInt(int64_t V) { return std::make_unique<IntLitExpr>(V); }
inline ExprPtr makeFloat(double V) {
  return std::make_unique<FloatLitExpr>(V);
}
inline ExprPtr makeBool(bool V) { return std::make_unique<BoolLitExpr>(V); }
inline ExprPtr makeVar(std::string Name) {
  return std::make_unique<VarExpr>(std::move(Name));
}
inline ExprPtr makeBinary(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS) {
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS));
}
inline ExprPtr makeUnary(UnaryOpKind Op, ExprPtr Operand) {
  return std::make_unique<UnaryExpr>(Op, std::move(Operand));
}
inline ExprPtr makeTuple(std::vector<ExprPtr> Elems) {
  return std::make_unique<TupleExpr>(std::move(Elems));
}
inline ExprPtr makeSub(ExprPtr Base, ExprPtr Index) {
  return std::make_unique<ArraySubExpr>(std::move(Base), std::move(Index));
}

} // namespace hac

#endif // HAC_AST_EXPR_H
