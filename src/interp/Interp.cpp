//===- interp/Interp.cpp - Lazy reference interpreter ---------------------===//

#include "interp/Interp.h"

#include "support/Casting.h"
#include "support/Trace.h"

#include <cmath>
#include <functional>

using namespace hac;

namespace {

/// Builtin name/arity table.
struct BuiltinSpec {
  const char *Name;
  unsigned Arity;
};

constexpr BuiltinSpec Builtins[] = {
    {"foldl", 3}, {"sum", 1},  {"product", 1}, {"length", 1},
    {"head", 1},  {"tail", 1}, {"abs", 1},     {"min", 2},
    {"max", 2},   {"fst", 1},  {"snd", 1},     {"intToFloat", 1},
    {"sqrt", 1},  {"flatmap", 2},
};

bool isNumeric(const Value *V) {
  return isa<IntValue>(V) || isa<FloatValue>(V);
}

double asDouble(const Value *V) {
  if (const auto *I = dyn_cast<IntValue>(V))
    return static_cast<double>(I->value());
  return cast<FloatValue>(V)->value();
}

} // namespace

Interpreter::Interpreter() = default;

ThunkPtr Interpreter::makeThunk(const Expr *E, EnvPtr Environment) {
  ++Stats.ThunksCreated;
  return std::make_shared<Thunk>(E, std::move(Environment));
}

EnvPtr Interpreter::makeGlobalEnv() {
  EnvPtr Global = std::make_shared<Env>();
  for (const BuiltinSpec &B : Builtins)
    Global->bind(B.Name,
                 makeValueThunk(std::make_shared<BuiltinValue>(
                     B.Name, B.Arity, std::vector<ThunkPtr>())));
  return Global;
}

ValuePtr Interpreter::evalProgram(const Expr *E) {
  if (!traceEnabled())
    return eval(E, makeGlobalEnv());
  TraceSpan Span("interp-eval");
  InterpStats Before = Stats;
  ValuePtr V = eval(E, makeGlobalEnv());
  foldStatsIntoTrace(Before);
  return V;
}

void Interpreter::foldStatsIntoTrace(const InterpStats &Before) const {
  if (!traceEnabled())
    return;
  TraceSink &S = TraceSink::get();
  S.count("interp.thunks_created", Stats.ThunksCreated - Before.ThunksCreated);
  S.count("interp.thunks_forced", Stats.ThunksForced - Before.ThunksForced);
  S.count("interp.cons_cells", Stats.ConsCells - Before.ConsCells);
  S.count("interp.array_allocs", Stats.ArrayAllocs - Before.ArrayAllocs);
  S.count("interp.elem_copies", Stats.ElemCopies - Before.ElemCopies);
  S.count("interp.applications", Stats.Applications - Before.Applications);
  S.count("interp.steps", Stats.Steps - Before.Steps);
}

ValuePtr Interpreter::force(const ThunkPtr &T) {
  assert(T && "forcing a null thunk");
  switch (T->state()) {
  case Thunk::State::Evaluated:
    return T->memo();
  case Thunk::State::BlackHole:
    // Demanding a thunk already under evaluation: a truly circular value,
    // i.e. bottom. (Haskell's "<<loop>>".)
    return makeErrorValue("cycle detected: value depends on itself");
  case Thunk::State::Unevaluated:
    break;
  }
  ++Stats.ThunksForced;
  const Expr *E = T->expr();
  EnvPtr Environment = T->env();
  T->blackhole();
  ValuePtr V = eval(E, Environment);
  T->update(V);
  return V;
}

ValuePtr Interpreter::eval(const Expr *E, const EnvPtr &Environment) {
  assert(E && "evaluating a null expression");
  ++Stats.Steps;
  if (Fuel != 0 && Stats.Steps > Fuel)
    return makeErrorValue("evaluation fuel exhausted");

  switch (E->kind()) {
  case ExprKind::IntLit:
    return makeIntValue(cast<IntLitExpr>(E)->value());
  case ExprKind::FloatLit:
    return makeFloatValue(cast<FloatLitExpr>(E)->value());
  case ExprKind::BoolLit:
    return makeBoolValue(cast<BoolLitExpr>(E)->value());
  case ExprKind::Var: {
    const std::string &Name = cast<VarExpr>(E)->name();
    ThunkPtr T = Environment->lookup(Name);
    if (!T)
      return makeErrorValue("unbound variable '" + Name + "'");
    return force(T);
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    ValuePtr V = eval(U->operand(), Environment);
    if (V->isError())
      return V;
    if (U->op() == UnaryOpKind::Neg) {
      if (const auto *I = dyn_cast<IntValue>(V.get()))
        return makeIntValue(-I->value());
      if (const auto *F = dyn_cast<FloatValue>(V.get()))
        return makeFloatValue(-F->value());
      return makeErrorValue("negation of a non-numeric value");
    }
    if (const auto *B = dyn_cast<BoolValue>(V.get()))
      return makeBoolValue(!B->value());
    return makeErrorValue("'not' applied to a non-boolean value");
  }
  case ExprKind::Binary:
    return evalBinary(cast<BinaryExpr>(E), Environment);
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    ValuePtr C = eval(I->cond(), Environment);
    if (C->isError())
      return C;
    const auto *B = dyn_cast<BoolValue>(C.get());
    if (!B)
      return makeErrorValue("'if' condition is not a boolean");
    return eval(B->value() ? I->thenExpr() : I->elseExpr(), Environment);
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    std::vector<ThunkPtr> Elems;
    Elems.reserve(T->size());
    for (const ExprPtr &Elem : T->elems())
      Elems.push_back(makeThunk(Elem.get(), Environment));
    return std::make_shared<TupleValue>(std::move(Elems));
  }
  case ExprKind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    return std::make_shared<ClosureValue>(L->body(), L->params(),
                                          Environment);
  }
  case ExprKind::Apply: {
    const auto *A = cast<ApplyExpr>(E);
    ValuePtr Fn = eval(A->fn(), Environment);
    if (Fn->isError())
      return Fn;
    std::vector<ThunkPtr> Args;
    Args.reserve(A->numArgs());
    for (const ExprPtr &Arg : A->args())
      Args.push_back(makeThunk(Arg.get(), Environment));
    return apply(std::move(Fn), std::move(Args));
  }
  case ExprKind::Let:
    return evalLet(cast<LetExpr>(E), Environment);
  case ExprKind::Range: {
    const auto *R = cast<RangeExpr>(E);
    ValuePtr LoV = eval(R->lo(), Environment);
    if (LoV->isError())
      return LoV;
    ValuePtr HiV = eval(R->hi(), Environment);
    if (HiV->isError())
      return HiV;
    const auto *Lo = dyn_cast<IntValue>(LoV.get());
    const auto *Hi = dyn_cast<IntValue>(HiV.get());
    if (!Lo || !Hi)
      return makeErrorValue("range bounds must be integers");
    int64_t Step = 1;
    if (R->hasSecond()) {
      ValuePtr SecondV = eval(R->second(), Environment);
      if (SecondV->isError())
        return SecondV;
      const auto *Second = dyn_cast<IntValue>(SecondV.get());
      if (!Second)
        return makeErrorValue("range step anchor must be an integer");
      Step = Second->value() - Lo->value();
      if (Step == 0)
        return makeErrorValue("range step of zero");
    }
    std::vector<ThunkPtr> Elems;
    if (Step > 0)
      for (int64_t I = Lo->value(); I <= Hi->value(); I += Step)
        Elems.push_back(makeValueThunk(makeIntValue(I)));
    else
      for (int64_t I = Lo->value(); I >= Hi->value(); I += Step)
        Elems.push_back(makeValueThunk(makeIntValue(I)));
    Stats.ConsCells += Elems.size();
    return std::make_shared<ListValue>(std::move(Elems));
  }
  case ExprKind::List: {
    const auto *L = cast<ListExpr>(E);
    std::vector<ThunkPtr> Elems;
    Elems.reserve(L->size());
    for (const ExprPtr &Elem : L->elems())
      Elems.push_back(makeThunk(Elem.get(), Environment));
    Stats.ConsCells += Elems.size();
    return std::make_shared<ListValue>(std::move(Elems));
  }
  case ExprKind::Comp:
    return evalComp(cast<CompExpr>(E), Environment);
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(E);
    std::vector<ThunkPtr> Elems;
    Elems.push_back(makeThunk(P->subscript(), Environment));
    Elems.push_back(makeThunk(P->value(), Environment));
    return std::make_shared<TupleValue>(std::move(Elems));
  }
  case ExprKind::ArraySub:
    return evalArraySub(cast<ArraySubExpr>(E), Environment);
  case ExprKind::MakeArray:
    return evalMakeArray(cast<MakeArrayExpr>(E), Environment);
  case ExprKind::AccumArray:
    return evalAccumArray(cast<AccumArrayExpr>(E), Environment);
  case ExprKind::BigUpd:
    return evalBigUpd(cast<BigUpdExpr>(E), Environment);
  case ExprKind::ForceElements: {
    ValuePtr V = eval(cast<ForceElementsExpr>(E)->arg(), Environment);
    if (V->isError())
      return V;
    return forceElements(V);
  }
  }
  return makeErrorValue("unhandled expression kind");
}

ValuePtr Interpreter::evalBinary(const BinaryExpr *B,
                                 const EnvPtr &Environment) {
  // Short-circuit booleans first.
  if (B->op() == BinaryOpKind::And || B->op() == BinaryOpKind::Or) {
    ValuePtr L = eval(B->lhs(), Environment);
    if (L->isError())
      return L;
    const auto *LB = dyn_cast<BoolValue>(L.get());
    if (!LB)
      return makeErrorValue("boolean operator on a non-boolean value");
    if (B->op() == BinaryOpKind::And && !LB->value())
      return makeBoolValue(false);
    if (B->op() == BinaryOpKind::Or && LB->value())
      return makeBoolValue(true);
    ValuePtr R = eval(B->rhs(), Environment);
    if (R->isError())
      return R;
    const auto *RB = dyn_cast<BoolValue>(R.get());
    if (!RB)
      return makeErrorValue("boolean operator on a non-boolean value");
    return makeBoolValue(RB->value());
  }

  ValuePtr L = eval(B->lhs(), Environment);
  if (L->isError())
    return L;
  ValuePtr R = eval(B->rhs(), Environment);
  if (R->isError())
    return R;

  if (B->op() == BinaryOpKind::Append) {
    const auto *LL = dyn_cast<ListValue>(L.get());
    const auto *RL = dyn_cast<ListValue>(R.get());
    if (!LL || !RL)
      return makeErrorValue("'++' applied to a non-list value");
    std::vector<ThunkPtr> Elems;
    Elems.reserve(LL->size() + RL->size());
    for (const ThunkPtr &T : LL->elems())
      Elems.push_back(T);
    for (const ThunkPtr &T : RL->elems())
      Elems.push_back(T);
    // Appending rebuilds the left spine.
    Stats.ConsCells += LL->size();
    return std::make_shared<ListValue>(std::move(Elems));
  }

  // Arithmetic and comparisons need numeric (or comparable) operands.
  bool LNum = isNumeric(L.get()), RNum = isNumeric(R.get());

  auto BothInts = [&]() {
    return isa<IntValue>(L.get()) && isa<IntValue>(R.get());
  };

  switch (B->op()) {
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div:
  case BinaryOpKind::Mod: {
    if (!LNum || !RNum)
      return makeErrorValue("arithmetic on a non-numeric value");
    if (BothInts()) {
      int64_t A = cast<IntValue>(L.get())->value();
      int64_t C = cast<IntValue>(R.get())->value();
      switch (B->op()) {
      case BinaryOpKind::Add:
        return makeIntValue(A + C);
      case BinaryOpKind::Sub:
        return makeIntValue(A - C);
      case BinaryOpKind::Mul:
        return makeIntValue(A * C);
      case BinaryOpKind::Div:
        if (C == 0)
          return makeErrorValue("integer division by zero");
        return makeIntValue(A / C);
      case BinaryOpKind::Mod:
        if (C == 0)
          return makeErrorValue("integer modulo by zero");
        return makeIntValue(A % C);
      default:
        break;
      }
    }
    double A = asDouble(L.get()), C = asDouble(R.get());
    switch (B->op()) {
    case BinaryOpKind::Add:
      return makeFloatValue(A + C);
    case BinaryOpKind::Sub:
      return makeFloatValue(A - C);
    case BinaryOpKind::Mul:
      return makeFloatValue(A * C);
    case BinaryOpKind::Div:
      return makeFloatValue(A / C);
    case BinaryOpKind::Mod:
      return makeFloatValue(std::fmod(A, C));
    default:
      break;
    }
    break;
  }
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne:
  case BinaryOpKind::Lt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Ge: {
    // Booleans support (in)equality.
    if (isa<BoolValue>(L.get()) && isa<BoolValue>(R.get())) {
      bool A = cast<BoolValue>(L.get())->value();
      bool C = cast<BoolValue>(R.get())->value();
      if (B->op() == BinaryOpKind::Eq)
        return makeBoolValue(A == C);
      if (B->op() == BinaryOpKind::Ne)
        return makeBoolValue(A != C);
      return makeErrorValue("ordering comparison on booleans");
    }
    if (!LNum || !RNum)
      return makeErrorValue("comparison on a non-numeric value");
    double A = asDouble(L.get()), C = asDouble(R.get());
    switch (B->op()) {
    case BinaryOpKind::Eq:
      return makeBoolValue(A == C);
    case BinaryOpKind::Ne:
      return makeBoolValue(A != C);
    case BinaryOpKind::Lt:
      return makeBoolValue(A < C);
    case BinaryOpKind::Le:
      return makeBoolValue(A <= C);
    case BinaryOpKind::Gt:
      return makeBoolValue(A > C);
    case BinaryOpKind::Ge:
      return makeBoolValue(A >= C);
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  return makeErrorValue("unhandled binary operator");
}

ValuePtr Interpreter::evalLet(const LetExpr *L, const EnvPtr &Environment) {
  EnvPtr Inner = std::make_shared<Env>(Environment);
  if (L->letKind() == LetKindEnum::Plain) {
    // Sequential, non-recursive: each binding sees the previous ones.
    for (const LetBind &B : L->binds())
      Inner->bind(B.Name, makeThunk(B.Value.get(), Inner));
    // NOTE: binding into Inner and evaluating in Inner gives sequential
    // visibility; a binding that refers to its own name sees itself and
    // blackholes, which models the (erroneous) circular plain let.
    return eval(L->body(), Inner);
  }

  // letrec / letrec*: all names scope over all bound expressions.
  for (const LetBind &B : L->binds())
    Inner->bind(B.Name, makeThunk(B.Value.get(), Inner));

  if (L->letKind() == LetKindEnum::RecStrict) {
    // letrec* (Section 2): each binding is forced, and arrays are
    // strictified with force-elements, before the body runs.
    for (const LetBind &B : L->binds()) {
      ThunkPtr T = Inner->lookup(B.Name);
      ValuePtr V = force(T);
      if (V->isError())
        return V;
      if (isa<ArrayValue>(V.get())) {
        ValuePtr Forced = forceElements(V);
        if (Forced->isError())
          return Forced;
      }
    }
  }
  return eval(L->body(), Inner);
}

ValuePtr Interpreter::apply(ValuePtr Fn, std::vector<ThunkPtr> Args) {
  ++Stats.Applications;
  while (!Args.empty()) {
    if (Fn->isError())
      return Fn;
    if (const auto *C = dyn_cast<ClosureValue>(Fn.get())) {
      size_t NumParams = C->params().size();
      size_t NumBound = Args.size() < NumParams ? Args.size() : NumParams;
      EnvPtr CallEnv = std::make_shared<Env>(C->env());
      for (size_t I = 0; I != NumBound; ++I)
        CallEnv->bind(C->params()[I], Args[I]);
      if (NumBound < NumParams) {
        // Partial application: remaining parameters stay abstracted.
        std::vector<std::string> Rest(C->params().begin() + NumBound,
                                      C->params().end());
        return std::make_shared<ClosureValue>(C->body(), std::move(Rest),
                                              CallEnv);
      }
      ValuePtr Result = eval(C->body(), CallEnv);
      Args.erase(Args.begin(), Args.begin() + NumBound);
      Fn = std::move(Result);
      continue;
    }
    if (const auto *B = dyn_cast<BuiltinValue>(Fn.get())) {
      std::vector<ThunkPtr> All = B->args();
      size_t Needed = B->arity() - All.size();
      size_t NumBound = Args.size() < Needed ? Args.size() : Needed;
      for (size_t I = 0; I != NumBound; ++I)
        All.push_back(Args[I]);
      if (All.size() < B->arity())
        return std::make_shared<BuiltinValue>(B->name(), B->arity(),
                                              std::move(All));
      ValuePtr Result = runBuiltin(B->name(), All);
      Args.erase(Args.begin(), Args.begin() + NumBound);
      Fn = std::move(Result);
      continue;
    }
    return makeErrorValue("application of a non-function value");
  }
  return Fn;
}

ValuePtr Interpreter::runBuiltin(const std::string &Name,
                                 const std::vector<ThunkPtr> &Args) {
  auto ForceNumeric = [&](const ThunkPtr &T, ValuePtr &Out) -> bool {
    Out = force(T);
    return !Out->isError() && isNumeric(Out.get());
  };

  if (Name == "foldl") {
    ValuePtr FnV = force(Args[0]);
    if (FnV->isError())
      return FnV;
    ValuePtr ListV = force(Args[2]);
    if (ListV->isError())
      return ListV;
    const auto *L = dyn_cast<ListValue>(ListV.get());
    if (!L)
      return makeErrorValue("foldl over a non-list value");
    // Strict accumulator (foldl'): faithful for the numeric folds the
    // paper targets and avoids building accumulator thunk chains.
    ValuePtr Acc = force(Args[1]);
    if (Acc->isError())
      return Acc;
    for (const ThunkPtr &Elem : L->elems()) {
      std::vector<ThunkPtr> CallArgs;
      CallArgs.push_back(makeValueThunk(Acc));
      CallArgs.push_back(Elem);
      Acc = apply(FnV, std::move(CallArgs));
      if (Acc->isError())
        return Acc;
    }
    return Acc;
  }

  if (Name == "sum" || Name == "product") {
    ValuePtr ListV = force(Args[0]);
    if (ListV->isError())
      return ListV;
    const auto *L = dyn_cast<ListValue>(ListV.get());
    if (!L)
      return makeErrorValue(Name + " over a non-list value");
    bool Mul = Name == "product";
    bool AnyFloat = false;
    int64_t IntAcc = Mul ? 1 : 0;
    double FloatAcc = Mul ? 1.0 : 0.0;
    for (const ThunkPtr &Elem : L->elems()) {
      ValuePtr V = force(Elem);
      if (V->isError())
        return V;
      if (!isNumeric(V.get()))
        return makeErrorValue(Name + " of a non-numeric element");
      if (!AnyFloat && isa<FloatValue>(V.get())) {
        AnyFloat = true;
        FloatAcc = static_cast<double>(IntAcc);
      }
      if (AnyFloat) {
        double X = asDouble(V.get());
        FloatAcc = Mul ? FloatAcc * X : FloatAcc + X;
      } else {
        int64_t X = cast<IntValue>(V.get())->value();
        IntAcc = Mul ? IntAcc * X : IntAcc + X;
      }
    }
    if (AnyFloat)
      return makeFloatValue(FloatAcc);
    return makeIntValue(IntAcc);
  }

  if (Name == "length") {
    ValuePtr ListV = force(Args[0]);
    if (ListV->isError())
      return ListV;
    const auto *L = dyn_cast<ListValue>(ListV.get());
    if (!L)
      return makeErrorValue("length of a non-list value");
    return makeIntValue(static_cast<int64_t>(L->size()));
  }

  if (Name == "head" || Name == "tail") {
    ValuePtr ListV = force(Args[0]);
    if (ListV->isError())
      return ListV;
    const auto *L = dyn_cast<ListValue>(ListV.get());
    if (!L)
      return makeErrorValue(Name + " of a non-list value");
    if (L->size() == 0)
      return makeErrorValue(Name + " of an empty list");
    if (Name == "head")
      return force(L->elem(0));
    std::vector<ThunkPtr> Rest(L->elems().begin() + 1, L->elems().end());
    return std::make_shared<ListValue>(std::move(Rest));
  }

  if (Name == "abs") {
    ValuePtr V;
    if (!ForceNumeric(Args[0], V))
      return V->isError() ? V : makeErrorValue("abs of a non-numeric value");
    if (const auto *I = dyn_cast<IntValue>(V.get()))
      return makeIntValue(I->value() < 0 ? -I->value() : I->value());
    double D = cast<FloatValue>(V.get())->value();
    return makeFloatValue(D < 0 ? -D : D);
  }

  if (Name == "sqrt") {
    ValuePtr V;
    if (!ForceNumeric(Args[0], V))
      return V->isError() ? V : makeErrorValue("sqrt of a non-numeric value");
    return makeFloatValue(std::sqrt(asDouble(V.get())));
  }

  if (Name == "intToFloat") {
    ValuePtr V;
    if (!ForceNumeric(Args[0], V))
      return V->isError() ? V
                          : makeErrorValue("intToFloat of a non-numeric value");
    return makeFloatValue(asDouble(V.get()));
  }

  if (Name == "min" || Name == "max") {
    ValuePtr A, B;
    if (!ForceNumeric(Args[0], A))
      return A->isError() ? A : makeErrorValue(Name + " of non-numeric value");
    if (!ForceNumeric(Args[1], B))
      return B->isError() ? B : makeErrorValue(Name + " of non-numeric value");
    if (isa<IntValue>(A.get()) && isa<IntValue>(B.get())) {
      int64_t X = cast<IntValue>(A.get())->value();
      int64_t Y = cast<IntValue>(B.get())->value();
      bool TakeA = Name == "min" ? X <= Y : X >= Y;
      return makeIntValue(TakeA ? X : Y);
    }
    double X = asDouble(A.get()), Y = asDouble(B.get());
    bool TakeA = Name == "min" ? X <= Y : X >= Y;
    return makeFloatValue(TakeA ? X : Y);
  }

  if (Name == "flatmap") {
    // flatmap f xs = (f x1) ++ (f x2) ++ ... — the TE translation's
    // primitive (Section 3.1).
    ValuePtr FnV = force(Args[0]);
    if (FnV->isError())
      return FnV;
    ValuePtr ListV = force(Args[1]);
    if (ListV->isError())
      return ListV;
    const auto *L = dyn_cast<ListValue>(ListV.get());
    if (!L)
      return makeErrorValue("flatmap over a non-list value");
    std::vector<ThunkPtr> Out;
    for (const ThunkPtr &Elem : L->elems()) {
      std::vector<ThunkPtr> CallArgs;
      CallArgs.push_back(Elem);
      ValuePtr Piece = apply(FnV, std::move(CallArgs));
      if (Piece->isError())
        return Piece;
      const auto *PL = dyn_cast<ListValue>(Piece.get());
      if (!PL)
        return makeErrorValue("flatmap function did not produce a list");
      for (const ThunkPtr &T : PL->elems())
        Out.push_back(T);
      Stats.ConsCells += PL->size();
    }
    return std::make_shared<ListValue>(std::move(Out));
  }

  if (Name == "fst" || Name == "snd") {
    ValuePtr V = force(Args[0]);
    if (V->isError())
      return V;
    const auto *T = dyn_cast<TupleValue>(V.get());
    if (!T || T->size() < 2)
      return makeErrorValue(Name + " of a non-pair value");
    return force(T->elem(Name == "fst" ? 0 : 1));
  }

  return makeErrorValue("unknown builtin '" + Name + "'");
}

ValuePtr Interpreter::evalComp(const CompExpr *C, const EnvPtr &Environment) {
  std::vector<ThunkPtr> Out;

  // Recursive qualifier expansion; returns an error value or null on
  // success.
  std::function<ValuePtr(size_t, const EnvPtr &)> Expand =
      [&](size_t QualIndex, const EnvPtr &CurEnv) -> ValuePtr {
    if (QualIndex == C->quals().size()) {
      if (!C->isNested()) {
        // Ordinary comprehension: the head is one (lazy) element.
        Out.push_back(makeThunk(C->head(), CurEnv));
        ++Stats.ConsCells;
        return nullptr;
      }
      // Nested comprehension: the head evaluates to a list whose elements
      // are spliced into the result (the TE translation's flatmap).
      ValuePtr HeadV = eval(C->head(), CurEnv);
      if (HeadV->isError())
        return HeadV;
      const auto *L = dyn_cast<ListValue>(HeadV.get());
      if (!L)
        return makeErrorValue(
            "nested comprehension head did not produce a list");
      for (const ThunkPtr &T : L->elems())
        Out.push_back(T);
      Stats.ConsCells += L->size();
      return nullptr;
    }

    const CompQual &Q = C->quals()[QualIndex];
    switch (Q.kind()) {
    case CompQual::Kind::Generator: {
      ValuePtr SourceV = eval(Q.source(), CurEnv);
      if (SourceV->isError())
        return SourceV;
      const auto *L = dyn_cast<ListValue>(SourceV.get());
      if (!L)
        return makeErrorValue("generator source is not a list");
      for (const ThunkPtr &Elem : L->elems()) {
        EnvPtr Child = std::make_shared<Env>(CurEnv);
        Child->bind(Q.var(), Elem);
        if (ValuePtr Err = Expand(QualIndex + 1, Child))
          return Err;
      }
      return nullptr;
    }
    case CompQual::Kind::Guard: {
      ValuePtr CondV = eval(Q.cond(), CurEnv);
      if (CondV->isError())
        return CondV;
      const auto *B = dyn_cast<BoolValue>(CondV.get());
      if (!B)
        return makeErrorValue("guard is not a boolean");
      if (!B->value())
        return nullptr;
      return Expand(QualIndex + 1, CurEnv);
    }
    case CompQual::Kind::LetQual: {
      EnvPtr Child = std::make_shared<Env>(CurEnv);
      for (const LetBind &Bind : Q.binds())
        Child->bind(Bind.Name, makeThunk(Bind.Value.get(), Child));
      return Expand(QualIndex + 1, Child);
    }
    }
    return nullptr;
  };

  if (ValuePtr Err = Expand(0, Environment))
    return Err;
  return std::make_shared<ListValue>(std::move(Out));
}

bool Interpreter::subscriptToIndex(const ValuePtr &V,
                                   std::vector<int64_t> &Index,
                                   ValuePtr &Err) {
  if (V->isError()) {
    Err = V;
    return false;
  }
  if (const auto *I = dyn_cast<IntValue>(V.get())) {
    Index.push_back(I->value());
    return true;
  }
  if (const auto *T = dyn_cast<TupleValue>(V.get())) {
    for (const ThunkPtr &Elem : T->elems()) {
      ValuePtr EV = force(Elem);
      if (EV->isError()) {
        Err = EV;
        return false;
      }
      const auto *I = dyn_cast<IntValue>(EV.get());
      if (!I) {
        Err = makeErrorValue("array subscript component is not an integer");
        return false;
      }
      Index.push_back(I->value());
    }
    return true;
  }
  Err = makeErrorValue("array subscript is not an integer or tuple");
  return false;
}

bool Interpreter::boundsToDims(const ValuePtr &V, ArrayValue::Bounds &Dims,
                               ValuePtr &Err) {
  const auto *T = dyn_cast<TupleValue>(V.get());
  if (!T || T->size() != 2) {
    Err = makeErrorValue("array bounds must be a pair");
    return false;
  }
  ValuePtr LoV = force(T->elem(0));
  if (LoV->isError()) {
    Err = LoV;
    return false;
  }
  ValuePtr HiV = force(T->elem(1));
  if (HiV->isError()) {
    Err = HiV;
    return false;
  }
  // 1-D: (lo, hi) with integer endpoints.
  if (isa<IntValue>(LoV.get()) && isa<IntValue>(HiV.get())) {
    Dims.emplace_back(cast<IntValue>(LoV.get())->value(),
                      cast<IntValue>(HiV.get())->value());
    return true;
  }
  // k-D: ((lo1,...,lok), (hi1,...,hik)).
  const auto *LoT = dyn_cast<TupleValue>(LoV.get());
  const auto *HiT = dyn_cast<TupleValue>(HiV.get());
  if (!LoT || !HiT || LoT->size() != HiT->size()) {
    Err = makeErrorValue("malformed array bounds");
    return false;
  }
  for (unsigned D = 0; D != LoT->size(); ++D) {
    ValuePtr L = force(LoT->elem(D));
    if (L->isError()) {
      Err = L;
      return false;
    }
    ValuePtr H = force(HiT->elem(D));
    if (H->isError()) {
      Err = H;
      return false;
    }
    const auto *LI = dyn_cast<IntValue>(L.get());
    const auto *HI = dyn_cast<IntValue>(H.get());
    if (!LI || !HI) {
      Err = makeErrorValue("array bound is not an integer");
      return false;
    }
    Dims.emplace_back(LI->value(), HI->value());
  }
  return true;
}

ValuePtr Interpreter::evalMakeArray(const MakeArrayExpr *M,
                                    const EnvPtr &Environment) {
  ValuePtr BoundsV = eval(M->bounds(), Environment);
  if (BoundsV->isError())
    return BoundsV;
  ArrayValue::Bounds Dims;
  ValuePtr Err;
  if (!boundsToDims(BoundsV, Dims, Err))
    return Err;

  size_t Size = 1;
  for (const auto &[Lo, Hi] : Dims) {
    if (Hi < Lo)
      return makeErrorValue("array upper bound below lower bound");
    Size *= static_cast<size_t>(Hi - Lo + 1);
  }

  // The constructor is strict in the s/v list spine and in subscripts,
  // lazy in element values (Haskell array semantics).
  ValuePtr ListV = eval(M->svList(), Environment);
  if (ListV->isError())
    return ListV;
  const auto *L = dyn_cast<ListValue>(ListV.get());
  if (!L)
    return makeErrorValue("array subscript/value argument is not a list");

  std::vector<ThunkPtr> Elems(Size);
  std::vector<uint8_t> Defined(Size, 0);
  for (const ThunkPtr &PairT : L->elems()) {
    ValuePtr PairV = force(PairT);
    if (PairV->isError())
      return PairV;
    const auto *P = dyn_cast<TupleValue>(PairV.get());
    if (!P || P->size() != 2)
      return makeErrorValue("array element is not a subscript/value pair");
    ValuePtr SubV = force(P->elem(0));
    std::vector<int64_t> Index;
    if (!subscriptToIndex(SubV, Index, Err))
      return Err;
    if (Index.size() != Dims.size())
      return makeErrorValue("array subscript rank mismatch");
    // Compute the row-major position, checking bounds.
    bool InBounds = true;
    size_t Pos = 0;
    for (size_t D = 0; D != Dims.size(); ++D) {
      int64_t Lo = Dims[D].first, Hi = Dims[D].second;
      if (Index[D] < Lo || Index[D] > Hi) {
        InBounds = false;
        break;
      }
      Pos = Pos * static_cast<size_t>(Hi - Lo + 1) +
            static_cast<size_t>(Index[D] - Lo);
    }
    if (!InBounds)
      return makeErrorValue("array definition out of bounds");
    if (Defined[Pos])
      return makeErrorValue("multiple definitions for one array element "
                            "(write collision)");
    Defined[Pos] = 1;
    Elems[Pos] = P->elem(1);
  }
  for (size_t I = 0; I != Size; ++I)
    if (!Defined[I])
      Elems[I] = makeValueThunk(
          makeErrorValue("undefined array element (empty)"));

  ++Stats.ArrayAllocs;
  return std::make_shared<ArrayValue>(std::move(Dims), std::move(Elems));
}

ValuePtr Interpreter::evalAccumArray(const AccumArrayExpr *A,
                                     const EnvPtr &Environment) {
  // accumArray f z bounds svlist (Section 3): every element starts at z;
  // each (s, v) pair combines as f acc v *in list order* (the combining
  // function may be non-commutative). The combine is strict, which is
  // faithful for the numeric accumulations scientific code uses.
  ValuePtr FnV = eval(A->fn(), Environment);
  if (FnV->isError())
    return FnV;
  ValuePtr InitV = eval(A->init(), Environment);
  if (InitV->isError())
    return InitV;

  ValuePtr BoundsV = eval(A->bounds(), Environment);
  if (BoundsV->isError())
    return BoundsV;
  ArrayValue::Bounds Dims;
  ValuePtr Err;
  if (!boundsToDims(BoundsV, Dims, Err))
    return Err;
  size_t Size = 1;
  for (const auto &[Lo, Hi] : Dims) {
    if (Hi < Lo)
      return makeErrorValue("array upper bound below lower bound");
    Size *= static_cast<size_t>(Hi - Lo + 1);
  }

  ValuePtr ListV = eval(A->svList(), Environment);
  if (ListV->isError())
    return ListV;
  const auto *L = dyn_cast<ListValue>(ListV.get());
  if (!L)
    return makeErrorValue("accumArray subscript/value argument is not a "
                          "list");

  std::vector<ValuePtr> Elems(Size, InitV);
  for (const ThunkPtr &PairT : L->elems()) {
    ValuePtr PairV = force(PairT);
    if (PairV->isError())
      return PairV;
    const auto *P = dyn_cast<TupleValue>(PairV.get());
    if (!P || P->size() != 2)
      return makeErrorValue("accumArray element is not a subscript/value "
                            "pair");
    ValuePtr SubV = force(P->elem(0));
    std::vector<int64_t> Index;
    if (!subscriptToIndex(SubV, Index, Err))
      return Err;
    size_t Pos = 0;
    bool InBounds = Index.size() == Dims.size();
    if (InBounds) {
      for (size_t D = 0; D != Dims.size(); ++D) {
        int64_t Lo = Dims[D].first, Hi = Dims[D].second;
        if (Index[D] < Lo || Index[D] > Hi) {
          InBounds = false;
          break;
        }
        Pos = Pos * static_cast<size_t>(Hi - Lo + 1) +
              static_cast<size_t>(Index[D] - Lo);
      }
    }
    if (!InBounds)
      return makeErrorValue("accumArray definition out of bounds");
    std::vector<ThunkPtr> CallArgs;
    CallArgs.push_back(makeValueThunk(Elems[Pos]));
    CallArgs.push_back(P->elem(1));
    ValuePtr Combined = apply(FnV, std::move(CallArgs));
    if (Combined->isError())
      return Combined;
    Elems[Pos] = Combined;
  }

  std::vector<ThunkPtr> Thunks;
  Thunks.reserve(Size);
  for (ValuePtr &V : Elems)
    Thunks.push_back(makeValueThunk(std::move(V)));
  ++Stats.ArrayAllocs;
  return std::make_shared<ArrayValue>(std::move(Dims), std::move(Thunks));
}

ValuePtr Interpreter::evalBigUpd(const BigUpdExpr *U,
                                 const EnvPtr &Environment) {
  ValuePtr BaseV = eval(U->base(), Environment);
  if (BaseV->isError())
    return BaseV;
  const auto *Base = dyn_cast<ArrayValue>(BaseV.get());
  if (!Base)
    return makeErrorValue("bigupd of a non-array value");

  ValuePtr ListV = eval(U->svList(), Environment);
  if (ListV->isError())
    return ListV;
  const auto *L = dyn_cast<ListValue>(ListV.get());
  if (!L)
    return makeErrorValue("bigupd subscript/value argument is not a list");

  // bigupd a svpairs = foldl upd a svpairs; each functional upd copies the
  // array — this *is* the naive cost the paper's Section 9 removes.
  std::vector<ThunkPtr> Elems = Base->elemThunks();
  Stats.ElemCopies += Elems.size();
  ++Stats.ArrayAllocs;
  ValuePtr Err;
  bool First = true;
  for (const ThunkPtr &PairT : L->elems()) {
    if (!First) {
      // Subsequent upd steps copy again (fresh array per update).
      std::vector<ThunkPtr> Copy = Elems;
      Stats.ElemCopies += Copy.size();
      ++Stats.ArrayAllocs;
      Elems = std::move(Copy);
    }
    First = false;
    ValuePtr PairV = force(PairT);
    if (PairV->isError())
      return PairV;
    const auto *P = dyn_cast<TupleValue>(PairV.get());
    if (!P || P->size() != 2)
      return makeErrorValue("bigupd element is not a subscript/value pair");
    ValuePtr SubV = force(P->elem(0));
    std::vector<int64_t> Index;
    if (!subscriptToIndex(SubV, Index, Err))
      return Err;
    size_t Pos = 0;
    bool InBounds = Index.size() == Base->dims().size();
    if (InBounds) {
      for (size_t D = 0; D != Base->dims().size(); ++D) {
        int64_t Lo = Base->dims()[D].first, Hi = Base->dims()[D].second;
        if (Index[D] < Lo || Index[D] > Hi) {
          InBounds = false;
          break;
        }
        Pos = Pos * static_cast<size_t>(Hi - Lo + 1) +
              static_cast<size_t>(Index[D] - Lo);
      }
    }
    if (!InBounds)
      return makeErrorValue("bigupd subscript out of bounds");
    Elems[Pos] = P->elem(1);
  }
  return std::make_shared<ArrayValue>(Base->dims(), std::move(Elems));
}

ValuePtr Interpreter::evalArraySub(const ArraySubExpr *S,
                                   const EnvPtr &Environment) {
  ValuePtr BaseV = eval(S->base(), Environment);
  if (BaseV->isError())
    return BaseV;
  const auto *A = dyn_cast<ArrayValue>(BaseV.get());
  if (!A)
    return makeErrorValue("subscript of a non-array value");
  ValuePtr IndexV = eval(S->index(), Environment);
  std::vector<int64_t> Index;
  ValuePtr Err;
  if (!subscriptToIndex(IndexV, Index, Err))
    return Err;
  size_t Linear;
  if (!A->linearize(Index, Linear))
    return makeErrorValue("array subscript out of bounds");
  return force(A->elemThunk(Linear));
}

ValuePtr Interpreter::forceElements(const ValuePtr &V) {
  const auto *A = dyn_cast<ArrayValue>(V.get());
  if (!A)
    return makeErrorValue("forceElements of a non-array value");
  for (const ThunkPtr &T : A->elemThunks()) {
    ValuePtr EV = force(T);
    if (EV->isError())
      return EV; // a single bottom element makes the whole array bottom
  }
  return V;
}

ValuePtr Interpreter::deepForce(const ValuePtr &V) {
  if (V->isError())
    return V;
  if (const auto *T = dyn_cast<TupleValue>(V.get())) {
    for (const ThunkPtr &Elem : T->elems()) {
      ValuePtr EV = deepForce(force(Elem));
      if (EV->isError())
        return EV;
    }
    return V;
  }
  if (const auto *L = dyn_cast<ListValue>(V.get())) {
    for (const ThunkPtr &Elem : L->elems()) {
      ValuePtr EV = deepForce(force(Elem));
      if (EV->isError())
        return EV;
    }
    return V;
  }
  if (isa<ArrayValue>(V.get()))
    return forceElements(V);
  return V;
}
