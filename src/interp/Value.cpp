//===- interp/Value.cpp - Runtime values ----------------------------------===//

#include "interp/Value.h"

#include <sstream>

using namespace hac;

Value::~Value() = default;

bool ArrayValue::linearize(const std::vector<int64_t> &Index,
                           size_t &Out) const {
  if (Index.size() != Dims.size())
    return false;
  size_t Linear = 0;
  for (size_t D = 0; D != Dims.size(); ++D) {
    int64_t Lo = Dims[D].first, Hi = Dims[D].second;
    if (Index[D] < Lo || Index[D] > Hi)
      return false;
    size_t Extent = static_cast<size_t>(Hi - Lo + 1);
    Linear = Linear * Extent + static_cast<size_t>(Index[D] - Lo);
  }
  Out = Linear;
  return true;
}

std::string Value::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case ValueKind::Int:
    OS << cast<IntValue>(this)->value();
    break;
  case ValueKind::Float:
    OS << cast<FloatValue>(this)->value();
    break;
  case ValueKind::Bool:
    OS << (cast<BoolValue>(this)->value() ? "True" : "False");
    break;
  case ValueKind::Tuple: {
    const auto *T = cast<TupleValue>(this);
    OS << '(';
    for (unsigned I = 0; I != T->size(); ++I) {
      if (I)
        OS << ", ";
      const ThunkPtr &Elem = T->elem(I);
      if (Elem && Elem->state() == Thunk::State::Evaluated)
        OS << Elem->memo()->str();
      else
        OS << "<thunk>";
    }
    OS << ')';
    break;
  }
  case ValueKind::List: {
    const auto *L = cast<ListValue>(this);
    OS << '[';
    for (size_t I = 0; I != L->size(); ++I) {
      if (I)
        OS << ", ";
      const ThunkPtr &T = L->elem(I);
      if (T->state() == Thunk::State::Evaluated)
        OS << T->memo()->str();
      else
        OS << "<thunk>";
    }
    OS << ']';
    break;
  }
  case ValueKind::Closure:
    OS << "<closure>";
    break;
  case ValueKind::Builtin:
    OS << "<builtin " << cast<BuiltinValue>(this)->name() << '>';
    break;
  case ValueKind::Array: {
    const auto *A = cast<ArrayValue>(this);
    OS << "array";
    for (const auto &[Lo, Hi] : A->dims())
      OS << '[' << Lo << ".." << Hi << ']';
    OS << " {";
    size_t Limit = A->size() < 16 ? A->size() : 16;
    for (size_t I = 0; I != Limit; ++I) {
      if (I)
        OS << ", ";
      const ThunkPtr &T = A->elemThunk(I);
      if (T && T->state() == Thunk::State::Evaluated)
        OS << T->memo()->str();
      else
        OS << "<thunk>";
    }
    if (A->size() > Limit)
      OS << ", ...";
    OS << '}';
    break;
  }
  case ValueKind::Error:
    OS << "<error: " << cast<ErrorValue>(this)->message() << '>';
    break;
  }
  return OS.str();
}
