//===- interp/Value.h - Runtime values for the interpreter ------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime value representation for the lazy reference interpreter: the
/// semantic baseline against which compiled code is differentially tested,
/// and the cost model for the "naive implementation" the paper argues is
/// prohibitive (per-element thunks, intermediate lists, copying updates).
///
/// Lists are spine-strict but element-lazy, which is faithful for every
/// program in the paper (array construction forces the spine of its s/v
/// list anyway). Non-strict monolithic arrays hold one thunk per element;
/// errors (bottom) are modeled by an Error value that propagates, and
/// forcing a thunk already under evaluation (a blackhole) yields the
/// "cycle" error, modeling nontermination of truly circular demands.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_INTERP_VALUE_H
#define HAC_INTERP_VALUE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hac {

class Expr;
class Value;
class Thunk;
class Env;
using ValuePtr = std::shared_ptr<Value>;
using ThunkPtr = std::shared_ptr<Thunk>;
using EnvPtr = std::shared_ptr<Env>;

enum class ValueKind : uint8_t {
  Int,
  Float,
  Bool,
  Tuple,
  List,
  Closure,
  Builtin,
  Array,
  Error,
};

/// Base class of interpreter values.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind kind() const { return Kind; }

  bool isError() const { return Kind == ValueKind::Error; }

  /// Renders the value for tests and tools (forced elements only).
  std::string str() const;

protected:
  explicit Value(ValueKind Kind) : Kind(Kind) {}

private:
  ValueKind Kind;
};

class IntValue : public Value {
public:
  explicit IntValue(int64_t V) : Value(ValueKind::Int), V(V) {}
  int64_t value() const { return V; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Int;
  }

private:
  int64_t V;
};

class FloatValue : public Value {
public:
  explicit FloatValue(double V) : Value(ValueKind::Float), V(V) {}
  double value() const { return V; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Float;
  }

private:
  double V;
};

class BoolValue : public Value {
public:
  explicit BoolValue(bool V) : Value(ValueKind::Bool), V(V) {}
  bool value() const { return V; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Bool;
  }

private:
  bool V;
};

/// Tuples are lazy in their components, so `s := v` (which evaluates to a
/// pair) keeps the element value side unevaluated until demanded.
class TupleValue : public Value {
public:
  explicit TupleValue(std::vector<ThunkPtr> Elems)
      : Value(ValueKind::Tuple), Elems(std::move(Elems)) {}
  unsigned size() const { return Elems.size(); }
  const ThunkPtr &elem(unsigned I) const { return Elems[I]; }
  const std::vector<ThunkPtr> &elems() const { return Elems; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Tuple;
  }

private:
  std::vector<ThunkPtr> Elems;
};

/// Spine-strict, element-lazy list.
class ListValue : public Value {
public:
  explicit ListValue(std::vector<ThunkPtr> Elems)
      : Value(ValueKind::List), Elems(std::move(Elems)) {}
  size_t size() const { return Elems.size(); }
  const ThunkPtr &elem(size_t I) const { return Elems[I]; }
  const std::vector<ThunkPtr> &elems() const { return Elems; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::List;
  }

private:
  std::vector<ThunkPtr> Elems;
};

/// A user lambda closed over its defining environment. Multi-parameter
/// lambdas curry: applying to fewer arguments yields a partial closure.
class ClosureValue : public Value {
public:
  ClosureValue(const Expr *Body, std::vector<std::string> Params, EnvPtr Env)
      : Value(ValueKind::Closure), Body(Body), Params(std::move(Params)),
        CapturedEnv(std::move(Env)) {}
  const Expr *body() const { return Body; }
  const std::vector<std::string> &params() const { return Params; }
  const EnvPtr &env() const { return CapturedEnv; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Closure;
  }

private:
  const Expr *Body;
  std::vector<std::string> Params;
  EnvPtr CapturedEnv;
};

/// A partially applied builtin (sum, foldl, length, ...).
class BuiltinValue : public Value {
public:
  BuiltinValue(std::string Name, unsigned Arity, std::vector<ThunkPtr> Args)
      : Value(ValueKind::Builtin), Name(std::move(Name)), Arity(Arity),
        Args(std::move(Args)) {}
  const std::string &name() const { return Name; }
  unsigned arity() const { return Arity; }
  const std::vector<ThunkPtr> &args() const { return Args; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Builtin;
  }

private:
  std::string Name;
  unsigned Arity;
  std::vector<ThunkPtr> Args;
};

/// Non-strict monolithic array: bounds per dimension and one thunk per
/// element (row-major). Elements with no s/v pair hold an "undefined
/// element" error thunk.
class ArrayValue : public Value {
public:
  using Bounds = std::vector<std::pair<int64_t, int64_t>>;

  ArrayValue(Bounds Dims, std::vector<ThunkPtr> Elems)
      : Value(ValueKind::Array), Dims(std::move(Dims)),
        Elems(std::move(Elems)) {}

  const Bounds &dims() const { return Dims; }
  unsigned rank() const { return Dims.size(); }
  size_t size() const { return Elems.size(); }
  const ThunkPtr &elemThunk(size_t Linear) const { return Elems[Linear]; }
  std::vector<ThunkPtr> &elemThunks() { return Elems; }
  const std::vector<ThunkPtr> &elemThunks() const { return Elems; }

  /// Row-major linearization of \p Index. Returns false when the index is
  /// out of bounds.
  bool linearize(const std::vector<int64_t> &Index, size_t &Out) const;

  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Array;
  }

private:
  Bounds Dims;
  std::vector<ThunkPtr> Elems;
};

/// Bottom / runtime error, carrying a message. Propagates through every
/// strict operation.
class ErrorValue : public Value {
public:
  explicit ErrorValue(std::string Message)
      : Value(ValueKind::Error), Message(std::move(Message)) {}
  const std::string &message() const { return Message; }
  static bool classof(const Value *Val) {
    return Val->kind() == ValueKind::Error;
  }

private:
  std::string Message;
};

//===----------------------------------------------------------------------===//
// Thunks
//===----------------------------------------------------------------------===//

/// A delayed computation: either an unevaluated (expr, env) pair, a
/// blackhole (under evaluation), or a memoized value. Also constructible
/// directly from a value (an "indirection").
class Thunk {
public:
  enum class State : uint8_t { Unevaluated, BlackHole, Evaluated };

  Thunk(const Expr *E, EnvPtr Env)
      : St(State::Unevaluated), E(E), CapturedEnv(std::move(Env)) {}
  explicit Thunk(ValuePtr V)
      : St(State::Evaluated), Memo(std::move(V)) {}

  State state() const { return St; }
  const Expr *expr() const { return E; }
  const EnvPtr &env() const { return CapturedEnv; }
  const ValuePtr &memo() const {
    assert(St == State::Evaluated);
    return Memo;
  }

  void blackhole() {
    assert(St == State::Unevaluated);
    St = State::BlackHole;
  }
  void update(ValuePtr V) {
    Memo = std::move(V);
    St = State::Evaluated;
    // Drop the closure to release the environment.
    E = nullptr;
    CapturedEnv.reset();
  }

private:
  State St;
  const Expr *E = nullptr;
  EnvPtr CapturedEnv;
  ValuePtr Memo;
};

//===----------------------------------------------------------------------===//
// Environments
//===----------------------------------------------------------------------===//

/// A chained environment frame mapping names to thunks.
class Env : public std::enable_shared_from_this<Env> {
public:
  explicit Env(EnvPtr Parent = nullptr) : Parent(std::move(Parent)) {}

  void bind(const std::string &Name, ThunkPtr T) {
    Bindings[Name] = std::move(T);
  }

  /// Looks up \p Name through the parent chain; null when unbound.
  ThunkPtr lookup(const std::string &Name) const {
    for (const Env *E = this; E; E = E->Parent.get()) {
      auto It = E->Bindings.find(Name);
      if (It != E->Bindings.end())
        return It->second;
    }
    return nullptr;
  }

private:
  EnvPtr Parent;
  std::map<std::string, ThunkPtr> Bindings;
};

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

inline ValuePtr makeIntValue(int64_t V) {
  return std::make_shared<IntValue>(V);
}
inline ValuePtr makeFloatValue(double V) {
  return std::make_shared<FloatValue>(V);
}
inline ValuePtr makeBoolValue(bool V) {
  return std::make_shared<BoolValue>(V);
}
inline ValuePtr makeErrorValue(std::string Message) {
  return std::make_shared<ErrorValue>(std::move(Message));
}
inline ThunkPtr makeValueThunk(ValuePtr V) {
  return std::make_shared<Thunk>(std::move(V));
}

} // namespace hac

#endif // HAC_INTERP_VALUE_H
