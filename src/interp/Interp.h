//===- interp/Interp.h - Lazy reference interpreter -------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lazy (call-by-need) reference interpreter. It defines the meaning
/// of every program and doubles as the paper's "naive implementation":
/// every array element is a thunk, comprehensions build real intermediate
/// lists, and `bigupd` copies the array on each update. Instrumentation
/// counters expose those costs to the benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_INTERP_INTERP_H
#define HAC_INTERP_INTERP_H

#include "ast/Expr.h"
#include "interp/Value.h"

#include <cstdint>

namespace hac {

/// Operation counters modeling the costs the paper's optimizations remove.
struct InterpStats {
  uint64_t ThunksCreated = 0;
  uint64_t ThunksForced = 0;
  uint64_t ConsCells = 0;   ///< list cells allocated
  uint64_t ArrayAllocs = 0; ///< arrays materialized
  uint64_t ElemCopies = 0;  ///< array elements copied by bigupd
  uint64_t Applications = 0;
  uint64_t Steps = 0; ///< eval() invocations (fuel metric)
};

/// The call-by-need evaluator. A single instance may evaluate many
/// programs; stats accumulate until reset.
class Interpreter {
public:
  Interpreter();

  /// Evaluates \p E in a fresh global environment containing only the
  /// builtins. The result is in WHNF; errors come back as ErrorValue.
  ValuePtr evalProgram(const Expr *E);

  /// Evaluates \p E in \p Environment (both may recurse via thunks).
  ValuePtr eval(const Expr *E, const EnvPtr &Environment);

  /// Forces \p T to WHNF with memoization and blackholing.
  ValuePtr force(const ThunkPtr &T);

  /// Forces every element of array \p V; returns the strictified array or
  /// the first element error (Section 2's force-elements).
  ValuePtr forceElements(const ValuePtr &V);

  /// Fully forces \p V (tuples, lists, arrays, deeply).
  ValuePtr deepForce(const ValuePtr &V);

  InterpStats &stats() { return Stats; }
  const InterpStats &stats() const { return Stats; }
  void resetStats() { Stats = InterpStats(); }

  /// Folds the stats accumulated since \p Before into the global trace
  /// sink under interp.* counter names (no-op when tracing is disabled),
  /// so thunked-baseline costs land in the same report as compile-time
  /// and thunkless-runtime telemetry.
  void foldStatsIntoTrace(const InterpStats &Before) const;

  /// Limits the number of eval() steps (0 = unlimited). Exceeding the
  /// budget produces an error value, never an abort; property tests use
  /// this to survive accidentally divergent random programs.
  void setFuel(uint64_t NewFuel) { Fuel = NewFuel; }

  /// Builds the global environment with builtins (sum, foldl, length, ...).
  EnvPtr makeGlobalEnv();

private:
  InterpStats Stats;
  uint64_t Fuel = 0;

  ThunkPtr makeThunk(const Expr *E, EnvPtr Environment);

  ValuePtr apply(ValuePtr Fn, std::vector<ThunkPtr> Args);
  ValuePtr runBuiltin(const std::string &Name,
                      const std::vector<ThunkPtr> &Args);

  ValuePtr evalComp(const CompExpr *C, const EnvPtr &Environment);
  ValuePtr evalMakeArray(const MakeArrayExpr *M, const EnvPtr &Environment);
  ValuePtr evalAccumArray(const AccumArrayExpr *A, const EnvPtr &Environment);
  ValuePtr evalBigUpd(const BigUpdExpr *U, const EnvPtr &Environment);
  ValuePtr evalLet(const LetExpr *L, const EnvPtr &Environment);
  ValuePtr evalBinary(const BinaryExpr *B, const EnvPtr &Environment);
  ValuePtr evalArraySub(const ArraySubExpr *S, const EnvPtr &Environment);

  /// Forces a subscript value into an index vector; returns false (with
  /// \p Err set) when it is not an integer or tuple of integers.
  bool subscriptToIndex(const ValuePtr &V, std::vector<int64_t> &Index,
                        ValuePtr &Err);

  /// Parses an evaluated bounds value into array dimensions.
  bool boundsToDims(const ValuePtr &V, ArrayValue::Bounds &Dims,
                    ValuePtr &Err);
};

} // namespace hac

#endif // HAC_INTERP_INTERP_H
