//===- codegen/ShapeEstimate.h - Target shapes for update plans -*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives a concrete target shape for an update plan whose extents are
/// only known at run time (the `bigupd` driver path: the library caller
/// would pass the real array, but the standalone tools have nothing to
/// pass). The estimate is the smallest box that covers every write
/// subscript range *and* every read of the updated array — a shape that
/// admits the writes but not the reads would fault on e.g. the Jacobi
/// stencil's `a!(i-1,j)` halo row.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CODEGEN_SHAPEESTIMATE_H
#define HAC_CODEGEN_SHAPEESTIMATE_H

#include "codegen/ExecPlan.h"

namespace hac {

/// Computes interval bounds for every dimension of \p Plan's target by
/// affine range analysis over all store subscripts and all reads of the
/// target (or alias) array inside clause values and guards. Returns
/// false — leaving \p Dims unspecified — when any subscript is not
/// affine in the clause's loop variables or the covered box is empty.
bool estimateUpdateDims(const ExecPlan &Plan, const ParamEnv &Params,
                        ArrayDims &Dims);

} // namespace hac

#endif // HAC_CODEGEN_SHAPEESTIMATE_H
