//===- codegen/CEmitter.h - Emit C code for execution plans -----*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a self-contained C function for an execution plan: the paper's
/// end product ("in most applications we can remove the main sources of
/// inefficiency that would otherwise prevent performance comparable to
/// Fortran"). The generated code is plain nested DO-loops with direct
/// stores — plus only the runtime checks the analyses could not
/// discharge, and the node-splitting ring buffers / snapshots.
///
/// The emitted function has the signature
///
/// \code
///   int NAME(double *target, const double *const *inputs);
/// \endcode
///
/// where `inputs[k]` is the flat storage of the k-th input array in
/// `CEmitResult::InputNames` order. Compile-time parameters are baked in
/// as constants. The return value is 0 on success or one of the
/// HAC_ERR_* codes for a failed runtime check.
///
/// The emitter prints the unified Loop IR (src/lir/) rather than walking
/// the plan's AST: plans are lowered by the same LIRLowering the
/// Executor runs, optimized by the same passes, and then rendered
/// instruction by instruction — one C statement per LIR instruction over
/// flat `long long`/`double` slot variables. Whatever the evaluator
/// executes is exactly what the C compiler sees.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CODEGEN_CEMITTER_H
#define HAC_CODEGEN_CEMITTER_H

#include "codegen/ExecPlan.h"

#include <map>
#include <string>
#include <vector>

namespace hac {
namespace lir {
struct LIRProgram;
} // namespace lir

/// Error codes the generated function can return.
enum CEmitError : int {
  HAC_OK = 0,
  HAC_ERR_BOUNDS = 1,
  HAC_ERR_COLLISION = 2,
  HAC_ERR_EMPTY = 3,
  HAC_ERR_DIV_ZERO = 4,
  /// A fold over a runtime-valued range whose step evaluated to zero
  /// (the loop would never terminate). The seed backend looped forever
  /// here; the LIR lowering emits an explicit check in both backends.
  HAC_ERR_RANGE_STEP = 5,
};

/// Result of emission.
struct CEmitResult {
  bool OK = false;
  std::string Error; ///< why emission failed (unsupported construct)
  std::string Code;  ///< the full C translation unit
  /// Names of input arrays, in the order the generated function expects
  /// them in its `inputs` argument.
  std::vector<std::string> InputNames;
};

/// Emits a C function named \p FunctionName implementing \p Plan.
/// \p InputDims optionally supplies the shape of each input array (for
/// linearizing reads); inputs without an entry are assumed to share the
/// target's shape. Fails (OK == false) on constructs the C backend does
/// not support (e.g. calls to unknown functions).
///
/// With \p Parallel set, loops the ParPlanner classified DOALL become
/// `#pragma omp parallel for` over a canonical 0-based counter, and
/// wavefront pairs become an explicit anti-diagonal front loop whose
/// per-front cell loop carries the pragma. The pragmas are ignored by
/// compilers without OpenMP support, and the parallel code computes the
/// same values in either case — emission only annotates loops the
/// legality pass (legalizePar) kept. Without \p Parallel the par flags
/// are stripped first and the output is byte-identical to the serial
/// emitter.
CEmitResult emitC(const ExecPlan &Plan, const std::string &FunctionName,
                  const ParamEnv &Params,
                  const std::map<std::string, ArrayDims> &InputDims = {},
                  bool Parallel = false);

/// Options for rendering a JIT kernel (emitKernelC).
struct KernelEmitOptions {
  /// When non-zero the kernel is a parallel one: OpenMP is pinned to
  /// this many threads (matching the evaluator's pool size, so stats
  /// and scheduling are comparable) and the count participates in the
  /// kernel cache key. Zero means a serial kernel.
  unsigned Threads = 0;
};

/// Renders an already-lowered, optimized, and sealed LIR program as a
/// native JIT kernel. Unlike emitC this runs no pipeline of its own:
/// the caller hands over the exact program the evaluator executes
/// (re-legalized with legalizePar(P, true, true) when parallel) and
/// gets C with the four-argument kernel ABI
///
/// \code
///   int NAME(double *target, const double *const *inputs,
///            unsigned char *defined, unsigned long long *stats);
/// \endcode
///
/// where `defined` is the caller's defined-bits bitmap (may be null;
/// all accesses are guarded, mirroring the evaluator's hasDefinedBits
/// guards) and `stats` is an 8-slot counter block the kernel adds into
/// on every exit path — [loads, stores, ring_saves, snapshot_copies,
/// bounds_checks, collision_checks, guard_evals, fused_iters] — so
/// ExecStats survive the tier swap. Exec-only instructions are
/// *rendered* (faulting checks become real C checks, stat counters
/// become counter adds): the kernel fails exactly when the evaluator
/// would. Fails (OK == false) on programs containing Fail or
/// CheckDefined instructions.
CEmitResult emitKernelC(const lir::LIRProgram &P,
                        const std::string &FunctionName,
                        const KernelEmitOptions &Opts = {});

} // namespace hac

#endif // HAC_CODEGEN_CEMITTER_H
