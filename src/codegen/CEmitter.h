//===- codegen/CEmitter.h - Emit C code for execution plans -----*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a self-contained C function for an execution plan: the paper's
/// end product ("in most applications we can remove the main sources of
/// inefficiency that would otherwise prevent performance comparable to
/// Fortran"). The generated code is plain nested DO-loops with direct
/// stores — plus only the runtime checks the analyses could not
/// discharge, and the node-splitting ring buffers / snapshots.
///
/// The emitted function has the signature
///
/// \code
///   int NAME(double *target, const double *const *inputs);
/// \endcode
///
/// where `inputs[k]` is the flat storage of the k-th input array in
/// `CEmitResult::InputNames` order. Compile-time parameters are baked in
/// as constants. The return value is 0 on success or one of the
/// HAC_ERR_* codes for a failed runtime check.
///
/// The emitter prints the unified Loop IR (src/lir/) rather than walking
/// the plan's AST: plans are lowered by the same LIRLowering the
/// Executor runs, optimized by the same passes, and then rendered
/// instruction by instruction — one C statement per LIR instruction over
/// flat `long long`/`double` slot variables. Whatever the evaluator
/// executes is exactly what the C compiler sees.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CODEGEN_CEMITTER_H
#define HAC_CODEGEN_CEMITTER_H

#include "codegen/ExecPlan.h"

#include <map>
#include <string>
#include <vector>

namespace hac {

/// Error codes the generated function can return.
enum CEmitError : int {
  HAC_OK = 0,
  HAC_ERR_BOUNDS = 1,
  HAC_ERR_COLLISION = 2,
  HAC_ERR_EMPTY = 3,
  HAC_ERR_DIV_ZERO = 4,
  /// A fold over a runtime-valued range whose step evaluated to zero
  /// (the loop would never terminate). The seed backend looped forever
  /// here; the LIR lowering emits an explicit check in both backends.
  HAC_ERR_RANGE_STEP = 5,
};

/// Result of emission.
struct CEmitResult {
  bool OK = false;
  std::string Error; ///< why emission failed (unsupported construct)
  std::string Code;  ///< the full C translation unit
  /// Names of input arrays, in the order the generated function expects
  /// them in its `inputs` argument.
  std::vector<std::string> InputNames;
};

/// Emits a C function named \p FunctionName implementing \p Plan.
/// \p InputDims optionally supplies the shape of each input array (for
/// linearizing reads); inputs without an entry are assumed to share the
/// target's shape. Fails (OK == false) on constructs the C backend does
/// not support (e.g. calls to unknown functions).
///
/// With \p Parallel set, loops the ParPlanner classified DOALL become
/// `#pragma omp parallel for` over a canonical 0-based counter, and
/// wavefront pairs become an explicit anti-diagonal front loop whose
/// per-front cell loop carries the pragma. The pragmas are ignored by
/// compilers without OpenMP support, and the parallel code computes the
/// same values in either case — emission only annotates loops the
/// legality pass (legalizePar) kept. Without \p Parallel the par flags
/// are stripped first and the output is byte-identical to the serial
/// emitter.
CEmitResult emitC(const ExecPlan &Plan, const std::string &FunctionName,
                  const ParamEnv &Params,
                  const std::map<std::string, ArrayDims> &InputDims = {},
                  bool Parallel = false);

} // namespace hac

#endif // HAC_CODEGEN_CEMITTER_H
