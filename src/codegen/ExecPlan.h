//===- codegen/ExecPlan.h - Executable loop program IR ----------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-level imperative program produced from a schedule: a tree of
/// DO-loops (with directions) and element stores, plus the node-splitting
/// apparatus (ring buffers and snapshots, Section 9) and flags saying
/// which runtime checks the analyses could and could not eliminate
/// (Sections 4 and 7).
///
/// Ring buffers implement rolling-temporary node splitting: every store
/// first saves the element's old value into a ring slot keyed by the
/// carried loop's phase and the deeper loop ordinals; redirected reads
/// fetch from the slot their saving instance wrote (or from the array
/// itself when the saving instance does not exist). A single ring per
/// clause serves all of its rolling splits — for the paper's Jacobi this
/// is exactly the "previous row" vector plus carried scalar.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CODEGEN_EXECPLAN_H
#define HAC_CODEGEN_EXECPLAN_H

#include "analysis/ArrayChecks.h"
#include "comp/CompNest.h"
#include "parallel/ParPlan.h"
#include "schedule/Scheduler.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hac {

/// One ring buffer serving the rolling splits of a single clause.
struct RingSpec {
  unsigned Id = 0;
  const ClauseNode *Clause = nullptr;
  /// Carried loop level c (index into Clause->loops()).
  unsigned Level = 0;
  /// Ring depth D: slots for the last D phases of loop c.
  int64_t Depth = 1;
  /// Trip counts of the loops deeper than c, outermost first.
  std::vector<int64_t> DeeperTrips;

  size_t size() const {
    size_t S = static_cast<size_t>(Depth);
    for (int64_t T : DeeperTrips)
      S *= static_cast<size_t>(T > 0 ? T : 0);
    return S;
  }
};

/// Redirection of one read to a ring buffer.
struct RingRedirect {
  unsigned RingId = 0;
  /// The level k the split's dependence is carried at (>= ring Level).
  unsigned Level = 0;
  int64_t Distance = 1;
};

/// A snapshot temporary: a pre-pass copy of a region of the target array.
struct SnapshotSpec {
  unsigned Id = 0;
  /// Inclusive [min, max] per dimension.
  std::vector<std::pair<int64_t, int64_t>> Region;

  size_t size() const {
    size_t S = 1;
    for (const auto &[Lo, Hi] : Region)
      S *= Hi >= Lo ? static_cast<size_t>(Hi - Lo + 1) : 0;
    return S;
  }
};

/// Redirection of one read to a snapshot.
struct SnapshotRedirect {
  unsigned SnapId = 0;
};

/// One statement in the plan.
struct PlanStmt {
  enum class Kind : uint8_t { For, Store } K = Kind::Store;

  // Kind::For — one pass of a loop.
  const LoopNode *Loop = nullptr;
  bool Backward = false;
  std::vector<PlanStmt> Body;
  /// Parallel class assigned by the ParPlanner (Serial until it runs)
  /// plus the human-readable proof witness / blocking reason. Lowering
  /// mirrors the class onto the LIR loop flags; hac-verify surfaces
  /// serial witnesses as HAC008 notes.
  par::ParClass Par = par::ParClass::Serial;
  std::string ParWitness;

  // Kind::Store — evaluate one clause instance and store it. Guards are
  // evaluated first; RingId >= 0 requests an old-value save before the
  // store.
  const ClauseNode *Clause = nullptr;
  int SaveRingId = -1;

  static PlanStmt makeFor(const LoopNode *L, bool Backward,
                          std::vector<PlanStmt> Body) {
    PlanStmt S;
    S.K = Kind::For;
    S.Loop = L;
    S.Backward = Backward;
    S.Body = std::move(Body);
    return S;
  }
  static PlanStmt makeStore(const ClauseNode *C, int SaveRingId) {
    PlanStmt S;
    S.K = Kind::Store;
    S.Clause = C;
    S.SaveRingId = SaveRingId;
    return S;
  }
};

/// A complete executable plan for one array construction or update.
struct ExecPlan {
  /// Name the target array is referenced by inside clause values.
  std::string TargetName;
  /// For in-place storage reuse (the Gauss-Seidel / Livermore 23 pattern):
  /// reads of this *input* array name resolve to the target storage too.
  std::string AliasName;
  ArrayDims Dims;
  std::vector<PlanStmt> Stmts;

  std::vector<RingSpec> Rings;
  std::vector<SnapshotSpec> Snapshots;
  /// Read expressions (ArraySub nodes inside clause values) redirected by
  /// node splitting.
  std::map<const Expr *, RingRedirect> RingRedirects;
  std::map<const Expr *, SnapshotRedirect> SnapRedirects;

  /// Runtime checks left over after analysis (Sections 4 and 7).
  bool CheckStoreBounds = true;
  bool CheckCollisions = true;
  bool CheckEmpties = true;
  /// Per-read bounds checks; false when the read-bounds analysis proved
  /// every array read in bounds (the verifier's HAC005 proof).
  bool CheckReadBounds = true;

  /// True for in-place updates (bigupd): the target starts defined and
  /// collisions are sequencing, not errors.
  bool InPlace = false;

  /// Unique identity assigned by the plan builders. The Executor's LIR
  /// cache keys on it, so two plans that happen to reuse the same stack
  /// or heap address never alias a cached compilation (0 = unassigned,
  /// never cached).
  uint64_t Id = 0;

  /// Human-readable rendering (tests, the depgraph tool).
  std::string str() const;
};

/// Lowers a schedule to an executable plan for a *monolithic* array
/// construction. Check flags are derived from \p Collisions / \p Coverage
/// (a Proven outcome eliminates the corresponding runtime check).
ExecPlan buildArrayPlan(const CompNest &Nest, const Schedule &Sched,
                        const std::string &TargetName, const ArrayDims &Dims,
                        const CollisionAnalysis &Collisions,
                        const CoverageAnalysis &Coverage,
                        const ReadBoundsAnalysis &ReadBounds);

/// Lowers an update schedule (with node splits) to an in-place plan.
ExecPlan buildUpdatePlan(const CompNest &Nest, const UpdateSchedule &Update,
                         const std::string &TargetName,
                         const ArrayDims &Dims);

/// Lowers an in-place *construction* (a monolithic array whose result
/// overwrites input array \p ReuseName — Section 9's storage-reuse case):
/// schedule and node splits come from \p Update (computed over flow +
/// anti edges), check flags from the construction analyses.
ExecPlan buildInPlaceArrayPlan(const CompNest &Nest,
                               const UpdateSchedule &Update,
                               const std::string &TargetName,
                               const std::string &ReuseName,
                               const ArrayDims &Dims,
                               const CollisionAnalysis &Collisions,
                               const CoverageAnalysis &Coverage,
                               const ReadBoundsAnalysis &ReadBounds);

} // namespace hac

#endif // HAC_CODEGEN_EXECPLAN_H
