//===- codegen/CEmitter.cpp - Emit C code for execution plans -------------===//

#include "codegen/CEmitter.h"

#include "ast/ASTPrinter.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace hac;

namespace {

/// A C expression string together with its static type.
struct CExpr {
  std::string Code;
  enum class Kind : uint8_t { Int, Dbl, Bool } K = Kind::Int;

  bool isNumeric() const { return K != Kind::Bool; }
};

std::string asDbl(const CExpr &E) {
  if (E.K == CExpr::Kind::Dbl)
    return E.Code;
  return "(double)" + E.Code;
}

class Emitter {
public:
  Emitter(const ExecPlan &Plan, const std::string &FunctionName,
          const ParamEnv &Params,
          const std::map<std::string, ArrayDims> &InputDims)
      : Plan(Plan), FunctionName(FunctionName), Params(Params),
        InputDims(InputDims) {}

  CEmitResult run() {
    CEmitResult Result;
    collectInputs();
    emitFunction();
    if (!Error.empty()) {
      Result.OK = false;
      Result.Error = Error;
      return Result;
    }
    Result.OK = true;
    Result.Code = Header.str() + Body.str();
    Result.InputNames = InputNames;
    return Result;
  }

private:
  const ExecPlan &Plan;
  std::string FunctionName;
  const ParamEnv &Params;
  const std::map<std::string, ArrayDims> &InputDims;

  std::ostringstream Header;
  std::ostringstream Body;
  std::string Error;
  unsigned Indent = 1;
  unsigned NextTemp = 0;

  std::vector<std::string> InputNames;

  /// name -> (C identifier, kind) for loop indices and let bindings.
  std::vector<std::pair<std::string, CExpr>> Scope;
  /// Active loops: LoopNode -> ordinal C variable (1-based).
  std::map<const LoopNode *, std::string> Ordinals;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  std::string fresh(const std::string &Prefix) {
    return "__" + Prefix + std::to_string(NextTemp++);
  }

  void line(const std::string &S) {
    for (unsigned I = 0; I != Indent; ++I)
      Body << "  ";
    Body << S << "\n";
  }

  //===------------------------------------------------------------------===//
  // Input discovery
  //===------------------------------------------------------------------===//

  void addInputsFrom(const Expr *E) {
    if (!E)
      return;
    if (const auto *S = dyn_cast<ArraySubExpr>(E)) {
      if (const auto *Base = dyn_cast<VarExpr>(S->base())) {
        const std::string &Name = Base->name();
        if (Name != Plan.TargetName && Name != Plan.AliasName &&
            std::find(InputNames.begin(), InputNames.end(), Name) ==
                InputNames.end())
          InputNames.push_back(Name);
      }
      addInputsFrom(S->index());
      return;
    }
    // Generic traversal.
    switch (E->kind()) {
    case ExprKind::Unary:
      addInputsFrom(cast<UnaryExpr>(E)->operand());
      return;
    case ExprKind::Binary:
      addInputsFrom(cast<BinaryExpr>(E)->lhs());
      addInputsFrom(cast<BinaryExpr>(E)->rhs());
      return;
    case ExprKind::If:
      addInputsFrom(cast<IfExpr>(E)->cond());
      addInputsFrom(cast<IfExpr>(E)->thenExpr());
      addInputsFrom(cast<IfExpr>(E)->elseExpr());
      return;
    case ExprKind::Let:
      for (const LetBind &B : cast<LetExpr>(E)->binds())
        addInputsFrom(B.Value.get());
      addInputsFrom(cast<LetExpr>(E)->body());
      return;
    case ExprKind::Apply:
      for (const ExprPtr &Arg : cast<ApplyExpr>(E)->args())
        addInputsFrom(Arg.get());
      return;
    case ExprKind::Range:
      addInputsFrom(cast<RangeExpr>(E)->lo());
      addInputsFrom(cast<RangeExpr>(E)->second());
      addInputsFrom(cast<RangeExpr>(E)->hi());
      return;
    case ExprKind::Comp: {
      const auto *C = cast<CompExpr>(E);
      for (const CompQual &Q : C->quals()) {
        switch (Q.kind()) {
        case CompQual::Kind::Generator:
          addInputsFrom(Q.source());
          break;
        case CompQual::Kind::Guard:
          addInputsFrom(Q.cond());
          break;
        case CompQual::Kind::LetQual:
          for (const LetBind &B : Q.binds())
            addInputsFrom(B.Value.get());
          break;
        }
      }
      addInputsFrom(C->head());
      return;
    }
    case ExprKind::List:
      for (const ExprPtr &Elem : cast<ListExpr>(E)->elems())
        addInputsFrom(Elem.get());
      return;
    default:
      return;
    }
  }

  void collectStmtInputs(const std::vector<PlanStmt> &Stmts) {
    for (const PlanStmt &S : Stmts) {
      if (S.K == PlanStmt::Kind::For) {
        collectStmtInputs(S.Body);
        continue;
      }
      for (const ExprPtr &Dim : S.Clause->subscripts())
        addInputsFrom(Dim.get());
      addInputsFrom(S.Clause->value());
      for (const GuardNode *G : S.Clause->guards())
        addInputsFrom(G->cond());
    }
  }

  void collectInputs() { collectStmtInputs(Plan.Stmts); }

  //===------------------------------------------------------------------===//
  // Array addressing
  //===------------------------------------------------------------------===//

  /// Extent of dimension D of the target array.
  int64_t targetExtent(size_t D) const {
    auto [Lo, Hi] = Plan.Dims[D];
    return Hi >= Lo ? Hi - Lo + 1 : 0;
  }

  /// Shape used to linearize accesses to array \p Name: its declared
  /// input shape if provided, else the target's.
  const ArrayDims &dimsFor(const std::string &Name) const {
    auto It = InputDims.find(Name);
    if (It != InputDims.end())
      return It->second;
    return Plan.Dims;
  }

  /// C storage expression for array \p Name (target, alias, or input).
  std::string arrayVar(const std::string &Name) {
    if (Name == Plan.TargetName || Name == Plan.AliasName)
      return "target";
    auto It = std::find(InputNames.begin(), InputNames.end(), Name);
    if (It == InputNames.end()) {
      fail("unknown array '" + Name + "'");
      return "target";
    }
    return "in" + std::to_string(It - InputNames.begin());
  }

  /// Emits the row-major linear index for the given per-dimension index
  /// expressions against \p Dims.
  std::string linearIndex(const std::vector<CExpr> &Index,
                          const ArrayDims &Dims) {
    if (Index.size() != Dims.size()) {
      fail("rank mismatch in emitted array access");
      return "0";
    }
    std::string S;
    for (size_t D = 0; D != Index.size(); ++D) {
      auto [Lo, Hi] = Dims[D];
      int64_t Extent = Hi >= Lo ? Hi - Lo + 1 : 0;
      std::string Term =
          "(" + Index[D].Code + " - (" + std::to_string(Lo) + "LL))";
      if (D == 0)
        S = Term;
      else
        S = "(" + S + ") * " + std::to_string(Extent) + "LL + " + Term;
    }
    return S;
  }

  /// Evaluates the index expression(s) of a subscript into CExprs.
  bool indexExprs(const Expr *IndexExpr, std::vector<CExpr> &Out) {
    auto AddDim = [&](const Expr *Dim) {
      CExpr E = emit(Dim);
      if (E.K != CExpr::Kind::Int) {
        fail("array subscript is not an integer expression");
        return false;
      }
      Out.push_back(E);
      return true;
    };
    if (const auto *T = dyn_cast<TupleExpr>(IndexExpr)) {
      for (const ExprPtr &Dim : T->elems())
        if (!AddDim(Dim.get()))
          return false;
      return true;
    }
    return AddDim(IndexExpr);
  }

  //===------------------------------------------------------------------===//
  // Ring buffers and snapshots
  //===------------------------------------------------------------------===//

  /// Slot expression for ring \p R as seen by instance x shifted by
  /// \p Delta on loop level \p ShiftLevel (use ~0u for no shift).
  std::string ringSlot(const RingSpec &R, unsigned ShiftLevel,
                       int64_t Delta) {
    const ClauseNode *C = R.Clause;
    auto Ordinal = [&](size_t M) -> std::string {
      const LoopNode *L = C->loops()[M];
      auto It = Ordinals.find(L);
      if (It == Ordinals.end()) {
        fail("ring references an inactive loop");
        return "0";
      }
      std::string S = It->second;
      if (M == ShiftLevel)
        S = "(" + S + " - " + std::to_string(Delta) + "LL)";
      return S;
    };
    // Phase: (ordinal_c - 1) % Depth — ordinals are 1-based.
    std::string Slot = "((" + Ordinal(R.Level) + " - 1) % " +
                       std::to_string(R.Depth) + "LL)";
    for (size_t M = R.Level + 1; M < C->loops().size(); ++M) {
      int64_t Extent = R.DeeperTrips[M - R.Level - 1];
      Slot = "(" + Slot + ") * " + std::to_string(Extent) + "LL + (" +
             Ordinal(M) + " - 1)";
    }
    return Slot;
  }

  //===------------------------------------------------------------------===//
  // Expression emission
  //===------------------------------------------------------------------===//

  CExpr emit(const Expr *E) {
    if (!Error.empty())
      return CExpr{"0", CExpr::Kind::Int};
    switch (E->kind()) {
    case ExprKind::IntLit:
      return CExpr{"(" + std::to_string(cast<IntLitExpr>(E)->value()) +
                       "LL)",
                   CExpr::Kind::Int};
    case ExprKind::FloatLit: {
      std::ostringstream OS;
      OS.precision(17);
      OS << cast<FloatLitExpr>(E)->value();
      std::string S = OS.str();
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos)
        S += ".0";
      return CExpr{"(" + S + ")", CExpr::Kind::Dbl};
    }
    case ExprKind::BoolLit:
      return CExpr{cast<BoolLitExpr>(E)->value() ? "1" : "0",
                   CExpr::Kind::Bool};
    case ExprKind::Var: {
      const std::string &Name = cast<VarExpr>(E)->name();
      for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
        if (It->first == Name)
          return It->second;
      auto PIt = Params.find(Name);
      if (PIt != Params.end())
        return CExpr{"(" + std::to_string(PIt->second) + "LL)",
                     CExpr::Kind::Int};
      fail("unbound variable '" + Name + "' in C emission");
      return CExpr{"0", CExpr::Kind::Int};
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      CExpr V = emit(U->operand());
      if (U->op() == UnaryOpKind::Neg)
        return CExpr{"(-" + V.Code + ")", V.K};
      return CExpr{"(!" + V.Code + ")", CExpr::Kind::Bool};
    }
    case ExprKind::Binary:
      return emitBinary(cast<BinaryExpr>(E));
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      CExpr C = emit(I->cond());
      CExpr T = emit(I->thenExpr());
      CExpr F = emit(I->elseExpr());
      if (T.K == F.K)
        return CExpr{"(" + C.Code + " ? " + T.Code + " : " + F.Code + ")",
                     T.K};
      if (T.isNumeric() && F.isNumeric())
        return CExpr{"(" + C.Code + " ? " + asDbl(T) + " : " + asDbl(F) +
                         ")",
                     CExpr::Kind::Dbl};
      fail("if branches have incompatible types");
      return T;
    }
    case ExprKind::Let: {
      // GNU statement expression with fresh identifiers.
      const auto *L = cast<LetExpr>(E);
      std::string Code = "({ ";
      size_t Mark = Scope.size();
      for (const LetBind &B : L->binds()) {
        CExpr V = emit(B.Value.get());
        std::string Id = fresh("let");
        const char *Type = V.K == CExpr::Kind::Dbl ? "double" : "long long";
        Code += std::string(Type) + " " + Id + " = " + V.Code + "; ";
        Scope.emplace_back(B.Name, CExpr{Id, V.K});
      }
      CExpr BodyE = emit(L->body());
      Scope.resize(Mark);
      Code += BodyE.Code + "; })";
      return CExpr{Code, BodyE.K};
    }
    case ExprKind::ArraySub:
      return emitRead(cast<ArraySubExpr>(E));
    case ExprKind::Apply:
      return emitApply(cast<ApplyExpr>(E));
    default:
      fail(std::string("expression kind ") + exprKindName(E->kind()) +
           " not supported by the C backend: " + exprToString(E));
      return CExpr{"0", CExpr::Kind::Int};
    }
  }

  CExpr emitBinary(const BinaryExpr *B) {
    CExpr L = emit(B->lhs());
    CExpr R = emit(B->rhs());
    auto Arith = [&](const char *Op) {
      if (L.K == CExpr::Kind::Int && R.K == CExpr::Kind::Int)
        return CExpr{"(" + L.Code + " " + Op + " " + R.Code + ")",
                     CExpr::Kind::Int};
      return CExpr{"(" + asDbl(L) + " " + Op + " " + asDbl(R) + ")",
                   CExpr::Kind::Dbl};
    };
    auto Compare = [&](const char *Op) {
      return CExpr{"(" + asDbl(L) + " " + Op + " " + asDbl(R) + ")",
                   CExpr::Kind::Bool};
    };
    switch (B->op()) {
    case BinaryOpKind::Add:
      return Arith("+");
    case BinaryOpKind::Sub:
      return Arith("-");
    case BinaryOpKind::Mul:
      return Arith("*");
    case BinaryOpKind::Div:
      if (L.K == CExpr::Kind::Int && R.K == CExpr::Kind::Int)
        return CExpr{"({ long long __d = " + R.Code +
                         "; __d == 0 ? (hac_err = 4, 0LL) : " + L.Code +
                         " / __d; })",
                     CExpr::Kind::Int};
      return CExpr{"(" + asDbl(L) + " / " + asDbl(R) + ")",
                   CExpr::Kind::Dbl};
    case BinaryOpKind::Mod:
      if (L.K == CExpr::Kind::Int && R.K == CExpr::Kind::Int)
        return CExpr{"({ long long __d = " + R.Code +
                         "; __d == 0 ? (hac_err = 4, 0LL) : " + L.Code +
                         " % __d; })",
                     CExpr::Kind::Int};
      return CExpr{"fmod(" + asDbl(L) + ", " + asDbl(R) + ")",
                   CExpr::Kind::Dbl};
    case BinaryOpKind::Eq:
      return Compare("==");
    case BinaryOpKind::Ne:
      return Compare("!=");
    case BinaryOpKind::Lt:
      return Compare("<");
    case BinaryOpKind::Le:
      return Compare("<=");
    case BinaryOpKind::Gt:
      return Compare(">");
    case BinaryOpKind::Ge:
      return Compare(">=");
    case BinaryOpKind::And:
      return CExpr{"(" + L.Code + " && " + R.Code + ")", CExpr::Kind::Bool};
    case BinaryOpKind::Or:
      return CExpr{"(" + L.Code + " || " + R.Code + ")", CExpr::Kind::Bool};
    case BinaryOpKind::Append:
      fail("'++' is not a scalar operation in C emission");
      return L;
    }
    return L;
  }

  CExpr emitRead(const ArraySubExpr *S) {
    // Node-splitting redirects.
    auto RIt = Plan.RingRedirects.find(S);
    if (RIt != Plan.RingRedirects.end()) {
      const RingRedirect &RR = RIt->second;
      const RingSpec &R = Plan.Rings[RR.RingId];
      const LoopNode *Carried = R.Clause->loops()[RR.Level];
      auto OIt = Ordinals.find(Carried);
      if (OIt == Ordinals.end()) {
        fail("redirected read outside its loop");
        return CExpr{"0", CExpr::Kind::Int};
      }
      CExpr Plain = emitPlainRead(S);
      std::string Cond =
          "(" + OIt->second + " > " + std::to_string(RR.Distance) + "LL)";
      std::string RingRead = "ring" + std::to_string(R.Id) + "[" +
                             ringSlot(R, RR.Level, RR.Distance) + "]";
      return CExpr{"(" + Cond + " ? " + RingRead + " : " + Plain.Code + ")",
                   CExpr::Kind::Dbl};
    }
    auto SIt = Plan.SnapRedirects.find(S);
    if (SIt != Plan.SnapRedirects.end()) {
      const SnapshotSpec &Spec = Plan.Snapshots[SIt->second.SnapId];
      std::vector<CExpr> Index;
      if (!indexExprs(S->index(), Index))
        return CExpr{"0", CExpr::Kind::Int};
      if (Index.size() != Spec.Region.size()) {
        fail("snapshot rank mismatch");
        return CExpr{"0", CExpr::Kind::Int};
      }
      std::string Lin;
      for (size_t D = 0; D != Index.size(); ++D) {
        auto [Lo, Hi] = Spec.Region[D];
        std::string Term = "(" + Index[D].Code + " - (" +
                           std::to_string(Lo) + "LL))";
        if (D == 0)
          Lin = Term;
        else
          Lin = "(" + Lin + ") * " + std::to_string(Hi - Lo + 1) + "LL + " +
                Term;
      }
      return CExpr{"snap" + std::to_string(SIt->second.SnapId) + "[" + Lin +
                       "]",
                   CExpr::Kind::Dbl};
    }
    return emitPlainRead(S);
  }

  CExpr emitPlainRead(const ArraySubExpr *S) {
    const auto *Base = dyn_cast<VarExpr>(S->base());
    if (!Base) {
      fail("array expression too complex for the C backend");
      return CExpr{"0", CExpr::Kind::Int};
    }
    std::vector<CExpr> Index;
    if (!indexExprs(S->index(), Index))
      return CExpr{"0", CExpr::Kind::Int};
    return CExpr{arrayVar(Base->name()) + "[" +
                     linearIndex(Index, dimsFor(Base->name())) + "]",
                 CExpr::Kind::Dbl};
  }

  CExpr emitApply(const ApplyExpr *A) {
    const auto *Fn = dyn_cast<VarExpr>(A->fn());
    if (!Fn) {
      fail("higher-order application not supported by the C backend");
      return CExpr{"0", CExpr::Kind::Int};
    }
    const std::string &Name = Fn->name();
    if ((Name == "sum" || Name == "product") && A->numArgs() == 1)
      return emitFold(Name == "product", A->arg(0));
    if (Name == "sqrt" && A->numArgs() == 1)
      return CExpr{"sqrt(" + asDbl(emit(A->arg(0))) + ")", CExpr::Kind::Dbl};
    if (Name == "intToFloat" && A->numArgs() == 1)
      return CExpr{asDbl(emit(A->arg(0))), CExpr::Kind::Dbl};
    if (Name == "abs" && A->numArgs() == 1) {
      CExpr V = emit(A->arg(0));
      if (V.K == CExpr::Kind::Int)
        return CExpr{"llabs(" + V.Code + ")", CExpr::Kind::Int};
      return CExpr{"fabs(" + V.Code + ")", CExpr::Kind::Dbl};
    }
    if ((Name == "min" || Name == "max") && A->numArgs() == 2) {
      CExpr L = emit(A->arg(0));
      CExpr R = emit(A->arg(1));
      const char *Op = Name == "min" ? "<=" : ">=";
      if (L.K == CExpr::Kind::Int && R.K == CExpr::Kind::Int)
        return CExpr{"(" + L.Code + " " + Op + " " + R.Code + " ? " +
                         L.Code + " : " + R.Code + ")",
                     CExpr::Kind::Int};
      return CExpr{"(" + asDbl(L) + " " + Op + " " + asDbl(R) + " ? " +
                       asDbl(L) + " : " + asDbl(R) + ")",
                   CExpr::Kind::Dbl};
    }
    fail("function '" + Name + "' not supported by the C backend");
    return CExpr{"0", CExpr::Kind::Int};
  }

  /// Fused fold over a comprehension/range/list: a statement-expression
  /// accumulator loop (Section 3.1's DO-loop translation).
  CExpr emitFold(bool Mul, const Expr *Source) {
    // Pre-compute the element kind by emitting the head in a scratch
    // emitter state is overkill; emit the loop accumulating into a double
    // when any element could be a double — determined after emitting the
    // element expression below. We build the pieces first.
    std::string Acc = fresh("acc");
    std::string LoopCode;
    CExpr::Kind ElemKind = CExpr::Kind::Int;
    if (!emitFoldLoops(Source, Acc, Mul, LoopCode, ElemKind))
      return CExpr{"0", CExpr::Kind::Int};
    const char *Type = ElemKind == CExpr::Kind::Dbl ? "double" : "long long";
    std::string Init = Mul ? (ElemKind == CExpr::Kind::Dbl ? "1.0" : "1LL")
                           : (ElemKind == CExpr::Kind::Dbl ? "0.0" : "0LL");
    return CExpr{"({ " + std::string(Type) + " " + Acc + " = " + Init +
                     "; " + LoopCode + " " + Acc + "; })",
                 ElemKind};
  }

  bool emitFoldLoops(const Expr *Source, const std::string &Acc, bool Mul,
                     std::string &Out, CExpr::Kind &ElemKind) {
    switch (Source->kind()) {
    case ExprKind::Range: {
      const auto *R = cast<RangeExpr>(Source);
      CExpr Lo = emit(R->lo());
      CExpr Hi = emit(R->hi());
      if (Lo.K != CExpr::Kind::Int || Hi.K != CExpr::Kind::Int) {
        fail("range bounds must be integers");
        return false;
      }
      std::string V = fresh("k");
      std::string Step = "1LL";
      if (R->hasSecond()) {
        CExpr Second = emit(R->second());
        Step = "(" + Second.Code + " - " + Lo.Code + ")";
      }
      // Elements of a bare range folded directly.
      std::string StepVar = fresh("st");
      Out += "{ long long " + StepVar + " = " + Step + "; for (long long " +
             V + " = " + Lo.Code + "; " + StepVar + " > 0 ? " + V +
             " <= " + Hi.Code + " : " + V + " >= " + Hi.Code + "; " + V +
             " += " + StepVar + ") { " + Acc + " " + (Mul ? "*=" : "+=") +
             " " + V + "; } }";
      if (ElemKind != CExpr::Kind::Dbl)
        ElemKind = CExpr::Kind::Int;
      return true;
    }
    case ExprKind::List: {
      for (const ExprPtr &Elem : cast<ListExpr>(Source)->elems()) {
        CExpr E = emit(Elem.get());
        if (E.K == CExpr::Kind::Dbl)
          ElemKind = CExpr::Kind::Dbl;
        Out += Acc + " " + (Mul ? "*=" : "+=") + " " + E.Code + "; ";
      }
      return true;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(Source);
      if (B->op() != BinaryOpKind::Append)
        break;
      return emitFoldLoops(B->lhs(), Acc, Mul, Out, ElemKind) &&
             emitFoldLoops(B->rhs(), Acc, Mul, Out, ElemKind);
    }
    case ExprKind::Comp:
      return emitFoldComp(cast<CompExpr>(Source), 0, Acc, Mul, Out,
                          ElemKind);
    default:
      break;
    }
    fail("fold source is not a comprehension, range, or list");
    return false;
  }

  bool emitFoldComp(const CompExpr *C, size_t QualIndex,
                    const std::string &Acc, bool Mul, std::string &Out,
                    CExpr::Kind &ElemKind) {
    if (QualIndex == C->quals().size()) {
      if (C->isNested())
        return emitFoldLoops(C->head(), Acc, Mul, Out, ElemKind);
      CExpr E = emit(C->head());
      if (E.K == CExpr::Kind::Dbl)
        ElemKind = CExpr::Kind::Dbl;
      Out += Acc + " " + (Mul ? "*=" : "+=") + " " + E.Code + "; ";
      return true;
    }
    const CompQual &Q = C->quals()[QualIndex];
    switch (Q.kind()) {
    case CompQual::Kind::Generator: {
      const auto *R = dyn_cast<RangeExpr>(Q.source());
      if (!R) {
        fail("fold generator must range over an arithmetic sequence");
        return false;
      }
      CExpr Lo = emit(R->lo());
      CExpr Hi = emit(R->hi());
      std::string Step = "1LL";
      if (R->hasSecond())
        Step = "(" + emit(R->second()).Code + " - " + Lo.Code + ")";
      std::string V = fresh("g");
      std::string StepVar = fresh("st");
      Out += "{ long long " + StepVar + " = " + Step + "; for (long long " +
             V + " = " + Lo.Code + "; " + StepVar + " > 0 ? " + V +
             " <= " + Hi.Code + " : " + V + " >= " + Hi.Code + "; " + V +
             " += " + StepVar + ") { ";
      size_t Mark = Scope.size();
      Scope.emplace_back(Q.var(), CExpr{V, CExpr::Kind::Int});
      bool OK = emitFoldComp(C, QualIndex + 1, Acc, Mul, Out, ElemKind);
      Scope.resize(Mark);
      Out += "} }";
      return OK;
    }
    case CompQual::Kind::Guard: {
      CExpr Cond = emit(Q.cond());
      Out += "if (" + Cond.Code + ") { ";
      bool OK = emitFoldComp(C, QualIndex + 1, Acc, Mul, Out, ElemKind);
      Out += "} ";
      return OK;
    }
    case CompQual::Kind::LetQual: {
      size_t Mark = Scope.size();
      Out += "{ ";
      for (const LetBind &B : Q.binds()) {
        CExpr V = emit(B.Value.get());
        std::string Id = fresh("lv");
        const char *Type = V.K == CExpr::Kind::Dbl ? "double" : "long long";
        Out += std::string(Type) + " " + Id + " = " + V.Code + "; ";
        Scope.emplace_back(B.Name, CExpr{Id, V.K});
      }
      bool OK = emitFoldComp(C, QualIndex + 1, Acc, Mul, Out, ElemKind);
      Scope.resize(Mark);
      Out += "} ";
      return OK;
    }
    }
    return false;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void emitStmts(const std::vector<PlanStmt> &Stmts) {
    for (const PlanStmt &S : Stmts) {
      if (!Error.empty())
        return;
      if (S.K == PlanStmt::Kind::For)
        emitFor(S);
      else
        emitStore(S);
    }
  }

  void emitFor(const PlanStmt &S) {
    const LoopBounds &B = S.Loop->bounds();
    int64_t M = B.tripCount();
    std::string T = "t" + std::to_string(S.Loop->id()) + "_" +
                    std::to_string(NextTemp++);
    std::string V = fresh(S.Loop->var());
    // Iterate the ordinal t = 1..M (or reversed) and derive the index.
    if (!S.Backward)
      line("for (long long " + T + " = 1; " + T +
           " <= " + std::to_string(M) + "LL; ++" + T + ") {");
    else
      line("for (long long " + T + " = " + std::to_string(M) + "LL; " + T +
           " >= 1; --" + T + ") {");
    ++Indent;
    line("long long " + V + " = " + std::to_string(B.Lo) + "LL + (" + T +
         " - 1) * " + std::to_string(B.Step) + "LL;");
    line("(void)" + V + ";");
    Scope.emplace_back(S.Loop->var(), CExpr{V, CExpr::Kind::Int});
    Ordinals[S.Loop] = T;
    emitStmts(S.Body);
    Ordinals.erase(S.Loop);
    Scope.pop_back();
    --Indent;
    line("}");
  }

  void emitStore(const PlanStmt &S) {
    const ClauseNode *C = S.Clause;
    line("{ /* clause #" + std::to_string(C->id()) + " */");
    ++Indent;

    // Guards, outermost first.
    unsigned GuardBraces = 0;
    for (const GuardNode *G : C->guards()) {
      CExpr Cond = emit(G->cond());
      line("if (" + Cond.Code + ") {");
      ++Indent;
      ++GuardBraces;
    }

    // Subscripts.
    std::vector<CExpr> Index;
    for (unsigned D = 0; D != C->rank(); ++D) {
      CExpr V = emit(C->subscript(D));
      if (V.K != CExpr::Kind::Int) {
        fail("subscript is not an integer");
        return;
      }
      std::string Id = fresh("s");
      line("long long " + Id + " = " + V.Code + ";");
      Index.push_back(CExpr{Id, CExpr::Kind::Int});
    }
    if (Plan.CheckStoreBounds) {
      for (size_t D = 0; D != Index.size(); ++D) {
        auto [Lo, Hi] = Plan.Dims[D];
        line("if (" + Index[D].Code + " < " + std::to_string(Lo) +
             "LL || " + Index[D].Code + " > " + std::to_string(Hi) +
             "LL) { rc = " + std::to_string(HAC_ERR_BOUNDS) +
             "; goto done; }");
      }
    }
    std::string Idx = fresh("idx");
    line("long long " + Idx + " = " + linearIndex(Index, Plan.Dims) + ";");

    if (Plan.CheckCollisions) {
      line("if (defined[" + Idx + "]) { rc = " +
           std::to_string(HAC_ERR_COLLISION) + "; goto done; }");
    }
    if (Plan.CheckCollisions || Plan.CheckEmpties)
      line("defined[" + Idx + "] = 1;");

    // Value (may set hac_err on integer division by zero).
    CExpr Value = emit(C->value());
    if (!Value.isNumeric()) {
      fail("element value is not numeric");
      return;
    }
    std::string Val = fresh("v");
    line("double " + Val + " = " + asDbl(Value) + ";");
    line("if (hac_err) { rc = hac_err; goto done; }");

    // Rolling save before the overwrite.
    if (S.SaveRingId >= 0) {
      const RingSpec &R = Plan.Rings[S.SaveRingId];
      line("ring" + std::to_string(R.Id) + "[" + ringSlot(R, ~0u, 0) +
           "] = target[" + Idx + "];");
    }
    line("target[" + Idx + "] = " + Val + ";");

    for (unsigned I = 0; I != GuardBraces; ++I) {
      --Indent;
      line("}");
    }
    --Indent;
    line("}");
  }

  //===------------------------------------------------------------------===//
  // The function shell
  //===------------------------------------------------------------------===//

  void emitFunction() {
    size_t TargetSize = 1;
    for (size_t D = 0; D != Plan.Dims.size(); ++D)
      TargetSize *= static_cast<size_t>(targetExtent(D));

    Header << "/* Generated by hac (Anderson & Hudak, PLDI 1990 "
              "reproduction). */\n"
           << "#include <math.h>\n#include <stdlib.h>\n#include "
              "<string.h>\n\n";

    Body << "int " << FunctionName
         << "(double *target, const double *const *inputs) {\n";
    line("int rc = 0;");
    line("long long hac_err = 0; (void)hac_err;");
    for (size_t I = 0; I != InputNames.size(); ++I)
      line("const double *in" + std::to_string(I) + " = inputs[" +
           std::to_string(I) + "]; (void)in" + std::to_string(I) + ";");
    line("unsigned char *defined = 0; (void)defined;");
    for (const RingSpec &R : Plan.Rings)
      line("double *ring" + std::to_string(R.Id) + " = 0;");
    for (const SnapshotSpec &Sn : Plan.Snapshots)
      line("double *snap" + std::to_string(Sn.Id) + " = 0;");

    if (Plan.CheckCollisions || Plan.CheckEmpties) {
      line("defined = (unsigned char *)calloc(" +
           std::to_string(TargetSize) + ", 1);");
      line("if (!defined) { return -1; }");
    }
    for (const RingSpec &R : Plan.Rings) {
      line("ring" + std::to_string(R.Id) + " = (double *)calloc(" +
           std::to_string(R.size()) + ", sizeof(double));");
      line("if (!ring" + std::to_string(R.Id) +
           ") { rc = -1; goto done; }");
    }
    for (const SnapshotSpec &Sn : Plan.Snapshots) {
      line("snap" + std::to_string(Sn.Id) + " = (double *)calloc(" +
           std::to_string(Sn.size()) + ", sizeof(double));");
      line("if (!snap" + std::to_string(Sn.Id) +
           ") { rc = -1; goto done; }");
      emitSnapshotCopy(Sn);
    }

    emitStmts(Plan.Stmts);

    if (Plan.CheckEmpties) {
      std::string I = fresh("e");
      line("for (long long " + I + " = 0; " + I + " < " +
           std::to_string(TargetSize) + "LL; ++" + I + ")");
      line("  if (!defined[" + I + "]) { rc = " +
           std::to_string(HAC_ERR_EMPTY) + "; goto done; }");
    }

    // Always emit the cleanup label (referenced conditionally above; a
    // harmless no-op goto keeps compilers from warning about an unused
    // label).
    line("goto done;");
    Body << "done:\n";
    line("free(defined);");
    for (const RingSpec &R : Plan.Rings)
      line("free(ring" + std::to_string(R.Id) + ");");
    for (const SnapshotSpec &Sn : Plan.Snapshots)
      line("free(snap" + std::to_string(Sn.Id) + ");");
    line("return rc;");
    Body << "}\n";
  }

  void emitSnapshotCopy(const SnapshotSpec &Sn) {
    // Copy the (bounds-clipped) region element by element.
    std::vector<std::string> Vars;
    std::string DstLin, SrcIdxOpen;
    for (size_t D = 0; D != Sn.Region.size(); ++D) {
      int64_t Lo = std::max(Sn.Region[D].first, Plan.Dims[D].first);
      int64_t Hi = std::min(Sn.Region[D].second, Plan.Dims[D].second);
      std::string V = fresh("c");
      Vars.push_back(V);
      line("for (long long " + V + " = " + std::to_string(Lo) + "LL; " + V +
           " <= " + std::to_string(Hi) + "LL; ++" + V + ")");
      ++Indent;
    }
    // Destination linearization over the (unclipped) region extents.
    for (size_t D = 0; D != Sn.Region.size(); ++D) {
      auto [Lo, Hi] = Sn.Region[D];
      std::string Term =
          "(" + Vars[D] + " - (" + std::to_string(Lo) + "LL))";
      DstLin = D == 0 ? Term
                      : "(" + DstLin + ") * " +
                            std::to_string(Hi - Lo + 1) + "LL + " + Term;
    }
    std::string SrcLin;
    for (size_t D = 0; D != Sn.Region.size(); ++D) {
      std::string Term = "(" + Vars[D] + " - (" +
                         std::to_string(Plan.Dims[D].first) + "LL))";
      SrcLin = D == 0 ? Term
                      : "(" + SrcLin + ") * " +
                            std::to_string(targetExtent(D)) + "LL + " + Term;
    }
    line("snap" + std::to_string(Sn.Id) + "[" + DstLin + "] = target[" +
         SrcLin + "];");
    for (size_t D = 0; D != Sn.Region.size(); ++D)
      --Indent;
  }
};

} // namespace

CEmitResult hac::emitC(const ExecPlan &Plan, const std::string &FunctionName,
                       const ParamEnv &Params,
                       const std::map<std::string, ArrayDims> &InputDims) {
  return Emitter(Plan, FunctionName, Params, InputDims).run();
}
