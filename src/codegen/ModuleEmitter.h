//===- codegen/ModuleEmitter.h - Emit C for whole modules -------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits one C translation unit for a compiled module: a kernel
/// `hac_array_<name>` per binding (the same emitC output the single-array
/// path produces) plus a driver
///
/// \code
///   int hac_module(double *out, const double *const *inputs);
/// \endcode
///
/// that runs the kernels in topological order over static buffers laid
/// out by the module's buffer plan — a recycled slot serves several
/// arrays, so the compiled footprint matches the planner's PeakBytes, not
/// one buffer per array. Each buffer is zeroed before its kernel runs
/// (kernels assume a freshly constructed target); the result binding
/// writes straight into the caller's `out`.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CODEGEN_MODULEEMITTER_H
#define HAC_CODEGEN_MODULEEMITTER_H

#include "core/Module.h"

#include <string>

namespace hac {

/// Result of module emission.
struct ModuleEmitResult {
  bool OK = false;
  std::string Error; ///< why emission failed
  std::string Code;  ///< the full C translation unit
};

/// Emits the C translation unit for \p M, which must be thunkless.
/// Declines (OK == false) when the module expects external runtime
/// inputs — the static-buffer driver is self-contained — or when any
/// binding's kernel hits a construct the C backend does not support.
/// With \p Parallel set, each kernel gets the OpenMP annotations emitC
/// produces for parallel loops.
ModuleEmitResult emitModuleC(const CompiledModule &M, bool Parallel = false);

} // namespace hac

#endif // HAC_CODEGEN_MODULEEMITTER_H
