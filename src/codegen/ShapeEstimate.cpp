//===- codegen/ShapeEstimate.cpp - Target shapes for update plans ---------===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ShapeEstimate.h"

#include "analysis/AffineExpr.h"
#include "ast/Expr.h"
#include "comp/CompNest.h"
#include "support/Casting.h"

#include <algorithm>

using namespace hac;

namespace {

void collectStoreClauses(const std::vector<PlanStmt> &Stmts,
                         std::vector<const ClauseNode *> &Out) {
  for (const PlanStmt &S : Stmts) {
    if (S.K == PlanStmt::Kind::For)
      collectStoreClauses(S.Body, Out);
    else
      Out.push_back(S.Clause);
  }
}

/// Widens \p Dims (growing it to \p Rank on first use) so dimension \p D
/// covers the affine range of \p E over the clause's loops. Clears \p OK
/// on non-affine subscripts and rank mismatches.
void widenDim(const Expr *E, size_t D, size_t Rank, const ClauseNode *C,
              const ParamEnv &Params, ArrayDims &Dims, bool &OK) {
  if (!OK)
    return;
  auto F = extractAffine(E, C->loops(), Params);
  if (!F) {
    OK = false;
    return;
  }
  if (Dims.size() < Rank)
    Dims.resize(Rank, {INT64_MAX, INT64_MIN});
  if (D >= Dims.size()) {
    OK = false;
    return;
  }
  Dims[D].first = std::min(Dims[D].first, F->minValue());
  Dims[D].second = std::max(Dims[D].second, F->maxValue());
}

/// Walks \p E for reads of the updated array (by target or alias name)
/// and widens \p Dims to cover their subscript ranges too.
void widenFromReads(const Expr *E, const ExecPlan &Plan,
                    const ClauseNode *C, const ParamEnv &Params,
                    ArrayDims &Dims, bool &OK) {
  if (!E || !OK)
    return;
  auto Recurse = [&](const Expr *Sub) {
    widenFromReads(Sub, Plan, C, Params, Dims, OK);
  };
  if (const auto *S = dyn_cast<ArraySubExpr>(E)) {
    Recurse(S->index());
    const auto *Base = dyn_cast<VarExpr>(S->base());
    if (!Base || (Base->name() != Plan.TargetName &&
                  (Plan.AliasName.empty() || Base->name() != Plan.AliasName)))
      return;
    if (const auto *T = dyn_cast<TupleExpr>(S->index())) {
      for (size_t D = 0; D != T->elems().size(); ++D)
        widenDim(T->elems()[D].get(), D, T->elems().size(), C, Params, Dims,
                 OK);
    } else {
      widenDim(S->index(), 0, 1, C, Params, Dims, OK);
    }
    return;
  }
  switch (E->kind()) {
  case ExprKind::Unary:
    Recurse(cast<UnaryExpr>(E)->operand());
    return;
  case ExprKind::Binary:
    Recurse(cast<BinaryExpr>(E)->lhs());
    Recurse(cast<BinaryExpr>(E)->rhs());
    return;
  case ExprKind::If:
    Recurse(cast<IfExpr>(E)->cond());
    Recurse(cast<IfExpr>(E)->thenExpr());
    Recurse(cast<IfExpr>(E)->elseExpr());
    return;
  case ExprKind::Let:
    for (const LetBind &B : cast<LetExpr>(E)->binds())
      Recurse(B.Value.get());
    Recurse(cast<LetExpr>(E)->body());
    return;
  case ExprKind::Apply:
    for (const ExprPtr &Arg : cast<ApplyExpr>(E)->args())
      Recurse(Arg.get());
    return;
  default:
    return;
  }
}

} // namespace

bool hac::estimateUpdateDims(const ExecPlan &Plan, const ParamEnv &Params,
                             ArrayDims &Dims) {
  std::vector<const ClauseNode *> Clauses;
  collectStoreClauses(Plan.Stmts, Clauses);
  if (Clauses.empty())
    return false;
  bool OK = true;
  Dims.clear();
  for (const ClauseNode *C : Clauses) {
    for (size_t D = 0; D != C->rank(); ++D)
      widenDim(C->subscript(D), D, C->rank(), C, Params, Dims, OK);
    widenFromReads(C->value(), Plan, C, Params, Dims, OK);
    for (const GuardNode *G : C->guards())
      widenFromReads(G->cond(), Plan, C, Params, Dims, OK);
  }
  for (const auto &[Lo, Hi] : Dims)
    if (Lo > Hi)
      OK = false;
  return OK;
}
