//===- codegen/ExecPlan.cpp - Plan lowering -------------------------------===//

#include "codegen/ExecPlan.h"

#include "ast/ASTPrinter.h"
#include "support/Casting.h"

#include <algorithm>
#include <sstream>

using namespace hac;

namespace {

void printStmts(const std::vector<PlanStmt> &Stmts, std::ostringstream &OS,
                unsigned Indent) {
  auto Pad = [&]() {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  };
  for (const PlanStmt &S : Stmts) {
    if (S.K == PlanStmt::Kind::For) {
      Pad();
      const LoopBounds &B = S.Loop->bounds();
      if (!S.Backward)
        OS << "for " << S.Loop->var() << " = " << B.Lo << " to " << B.Hi
           << " step " << B.Step << " {\n";
      else
        OS << "for " << S.Loop->var() << " = " << B.Hi << " downto " << B.Lo
           << " step " << B.Step << " (reversed) {\n";
      printStmts(S.Body, OS, Indent + 1);
      Pad();
      OS << "}\n";
      continue;
    }
    Pad();
    OS << "store #" << S.Clause->id() << " [";
    for (unsigned D = 0; D != S.Clause->rank(); ++D) {
      if (D)
        OS << ", ";
      OS << exprToString(S.Clause->subscript(D));
    }
    OS << "] := " << exprToString(S.Clause->value());
    if (S.SaveRingId >= 0)
      OS << "  (save old -> ring " << S.SaveRingId << ")";
    OS << "\n";
  }
}

} // namespace

std::string ExecPlan::str() const {
  std::ostringstream OS;
  OS << "plan for '" << TargetName << "'";
  for (const auto &[Lo, Hi] : Dims)
    OS << " [" << Lo << ".." << Hi << "]";
  OS << (InPlace ? " (in place)" : "") << "\n";
  OS << "checks: bounds=" << (CheckStoreBounds ? "on" : "off")
     << " collisions=" << (CheckCollisions ? "on" : "off")
     << " empties=" << (CheckEmpties ? "on" : "off")
     << " reads=" << (CheckReadBounds ? "on" : "off") << "\n";
  for (const RingSpec &R : Rings)
    OS << "ring " << R.Id << ": clause #" << R.Clause->id() << " level "
       << R.Level << " depth " << R.Depth << " size " << R.size() << "\n";
  for (const SnapshotSpec &S : Snapshots) {
    OS << "snapshot " << S.Id << ": region";
    for (const auto &[Lo, Hi] : S.Region)
      OS << " [" << Lo << ".." << Hi << "]";
    OS << " size " << S.size() << "\n";
  }
  printStmts(Stmts, OS, 0);
  return OS.str();
}

namespace {

/// Lowers scheduled units into plan statements.
std::vector<PlanStmt>
lowerUnits(const std::vector<SchedUnit> &Units,
           const std::map<const ClauseNode *, int> &SaveRingOf) {
  std::vector<PlanStmt> Out;
  for (const SchedUnit &U : Units) {
    if (U.K == SchedUnit::Kind::Clause) {
      auto It = SaveRingOf.find(U.Clause);
      Out.push_back(PlanStmt::makeStore(
          U.Clause, It == SaveRingOf.end() ? -1 : It->second));
      continue;
    }
    // LoopDir::Either defaults to a forward pass.
    Out.push_back(PlanStmt::makeFor(U.Loop, U.Dir == LoopDir::Backward,
                                    lowerUnits(U.Body, SaveRingOf)));
  }
  return Out;
}

uint64_t nextPlanId() {
  static uint64_t Next = 0;
  return ++Next;
}

} // namespace

ExecPlan hac::buildArrayPlan(const CompNest &Nest, const Schedule &Sched,
                             const std::string &TargetName,
                             const ArrayDims &Dims,
                             const CollisionAnalysis &Collisions,
                             const CoverageAnalysis &Coverage,
                             const ReadBoundsAnalysis &ReadBounds) {
  (void)Nest;
  assert(Sched.Thunkless && "cannot lower a schedule that needs thunks");
  ExecPlan Plan;
  Plan.Id = nextPlanId();
  Plan.TargetName = TargetName;
  Plan.Dims = Dims;
  Plan.InPlace = false;
  Plan.Stmts = lowerUnits(Sched.Units, {});
  // Check elimination (Sections 4 and 7): a Proven analysis outcome
  // removes the runtime check entirely.
  Plan.CheckStoreBounds = Coverage.InBounds != CheckOutcome::Proven;
  Plan.CheckCollisions = Collisions.NoCollisions != CheckOutcome::Proven;
  Plan.CheckEmpties = Coverage.NoEmpties != CheckOutcome::Proven;
  Plan.CheckReadBounds = ReadBounds.AllInBounds != CheckOutcome::Proven;
  return Plan;
}

ExecPlan hac::buildInPlaceArrayPlan(const CompNest &Nest,
                                    const UpdateSchedule &Update,
                                    const std::string &TargetName,
                                    const std::string &ReuseName,
                                    const ArrayDims &Dims,
                                    const CollisionAnalysis &Collisions,
                                    const CoverageAnalysis &Coverage,
                                    const ReadBoundsAnalysis &ReadBounds) {
  ExecPlan Plan = buildUpdatePlan(Nest, Update, TargetName, Dims);
  Plan.Id = nextPlanId();
  Plan.Dims = Dims;
  Plan.AliasName = ReuseName;
  // This is still a *construction*: collisions are errors and every
  // element needs a definition, unless the analyses proved otherwise.
  Plan.CheckStoreBounds = Coverage.InBounds != CheckOutcome::Proven;
  Plan.CheckCollisions = Collisions.NoCollisions != CheckOutcome::Proven;
  Plan.CheckEmpties = Coverage.NoEmpties != CheckOutcome::Proven;
  Plan.CheckReadBounds = ReadBounds.AllInBounds != CheckOutcome::Proven;
  return Plan;
}

ExecPlan hac::buildUpdatePlan(const CompNest &Nest,
                              const UpdateSchedule &Update,
                              const std::string &TargetName,
                              const ArrayDims &Dims) {
  (void)Nest;
  assert(Update.InPlace && "cannot lower a non-in-place update");
  ExecPlan Plan;
  Plan.Id = nextPlanId();
  Plan.TargetName = TargetName;
  Plan.Dims = Dims;
  Plan.InPlace = true;
  // Updates overwrite an existing, fully defined array: collisions are
  // legitimate sequencing and emptiness cannot arise.
  Plan.CheckCollisions = false;
  Plan.CheckEmpties = false;
  Plan.CheckStoreBounds = true; // refined below if all writes proven safe

  // Unify the rolling splits of each clause into a single ring buffer at
  // the *minimum* carried level: saves from that ring serve every deeper
  // or same-level redirect (see the header comment).
  std::map<const ClauseNode *, std::vector<const SplitAction *>> ByClause;
  for (const SplitAction &A : Update.Splits) {
    if (A.K == SplitAction::Kind::Rolling)
      ByClause[A.Clause].push_back(&A);
    else {
      SnapshotSpec Snap;
      Snap.Id = Plan.Snapshots.size();
      Snap.Region = A.Region;
      Plan.SnapRedirects[A.ReadRef] = SnapshotRedirect{Snap.Id};
      Plan.Snapshots.push_back(std::move(Snap));
    }
  }

  std::map<const ClauseNode *, int> SaveRingOf;
  for (auto &[Clause, Actions] : ByClause) {
    RingSpec Ring;
    Ring.Id = Plan.Rings.size();
    Ring.Clause = Clause;
    Ring.Level = ~0u;
    for (const SplitAction *A : Actions)
      Ring.Level = std::min(Ring.Level, A->CarriedLevel);
    Ring.Depth = 1;
    for (const SplitAction *A : Actions)
      if (A->CarriedLevel == Ring.Level)
        Ring.Depth = std::max(Ring.Depth, A->Distance);
    for (size_t M = Ring.Level + 1; M < Clause->loops().size(); ++M)
      Ring.DeeperTrips.push_back(Clause->loops()[M]->bounds().tripCount());
    for (const SplitAction *A : Actions)
      Plan.RingRedirects[A->ReadRef] =
          RingRedirect{Ring.Id, A->CarriedLevel, A->Distance};
    SaveRingOf[Clause] = static_cast<int>(Ring.Id);
    Plan.Rings.push_back(std::move(Ring));
  }

  Plan.Stmts = lowerUnits(Update.Sched.Units, SaveRingOf);
  return Plan;
}
