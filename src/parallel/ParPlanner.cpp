//===- parallel/ParPlanner.cpp - Dependence-driven loop classifier --------===//

#include "parallel/ParPlanner.h"

#include "support/Trace.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace hac;
using namespace hac::par;

std::string ParSummary::str() const {
  std::ostringstream OS;
  OS << "doall=" << NumDoall << " wavefront=" << NumWave
     << " serial=" << NumSerial;
  return OS.str();
}

namespace {

/// Collects the clause ids stored anywhere under \p S and whether any of
/// them saves into a ring buffer.
void collectSubtree(const PlanStmt &S, std::set<unsigned> &Clauses,
                    bool &HasRing) {
  if (S.K == PlanStmt::Kind::Store) {
    if (S.Clause)
      Clauses.insert(S.Clause->id());
    if (S.SaveRingId >= 0)
      HasRing = true;
    return;
  }
  for (const PlanStmt &C : S.Body)
    collectSubtree(C, Clauses, HasRing);
}

struct Planner {
  const std::vector<const DepEdge *> &Edges;
  bool UnknownRefs;
  const std::string &UnknownReason;
  ParSummary Summary;

  bool bothInside(const DepEdge &E, const std::set<unsigned> &Clauses) {
    return Clauses.count(E.Src) && Clauses.count(E.Dst);
  }

  /// Tries to prove the 2-deep nest rooted at \p S a wavefront: every
  /// edge internal to the nest must have a uniform distance (d1, d2) over
  /// (outer, inner) with d1 + d2 >= 1, so the anti-diagonal fronts
  /// f = it1 + it2 respect every dependence. Fills the witness with the
  /// distance set on success, the blocking reason on failure.
  bool tryWavefront(PlanStmt &S, const std::set<unsigned> &Clauses,
                    std::string &Witness) {
    if (S.Body.size() != 1 || S.Body[0].K != PlanStmt::Kind::For) {
      Witness = "not a singly nested loop pair";
      return false;
    }
    PlanStmt &Inner = S.Body[0];
    if (S.Backward || Inner.Backward) {
      Witness = "backward loop in the nest";
      return false;
    }
    for (const PlanStmt &B : Inner.Body)
      if (B.K != PlanStmt::Kind::Store) {
        Witness = "inner loop body is not store-only";
        return false;
      }
    const LoopNode *Outer = S.Loop, *InnerL = Inner.Loop;
    std::ostringstream Dists;
    bool Any = false;
    for (const DepEdge *EP : Edges) {
      const DepEdge &E = *EP;
      if (!bothInside(E, Clauses))
        continue;
      std::vector<int64_t> Delta;
      if (!uniformDistance(E, Delta)) {
        Witness = "no uniform distance for " + E.str();
        return false;
      }
      // Locate the pair's components; a nonzero distance on an outer
      // (ancestor) shared loop means that loop alone satisfies the edge.
      int64_t D1 = 0, D2 = 0;
      bool CarriedOutside = false;
      for (size_t K = 0; K != E.SharedLoops.size(); ++K) {
        if (E.SharedLoops[K] == Outer)
          D1 = Delta[K];
        else if (E.SharedLoops[K] == InnerL)
          D2 = Delta[K];
        else if (Delta[K] != 0)
          CarriedOutside = true;
      }
      if (CarriedOutside)
        continue;
      // Normalize to execution order (sink after source).
      if (D1 < 0 || (D1 == 0 && D2 < 0)) {
        D1 = -D1;
        D2 = -D2;
      }
      if (D1 == 0 && D2 == 0)
        continue; // loop-independent: ordered within one cell
      if (D1 + D2 < 1) {
        std::ostringstream OS;
        OS << "distance (" << D1 << "," << D2 << ") of " << E.str()
           << " crosses a front";
        Witness = OS.str();
        return false;
      }
      Dists << (Any ? ", " : "") << "(" << D1 << "," << D2 << ")";
      Any = true;
    }
    Witness = "uniform distances {" + Dists.str() +
              "}: front f = i1 + i2 respects every dependence";
    return true;
  }

  void classifyFor(PlanStmt &S) {
    std::set<unsigned> Clauses;
    bool HasRing = false;
    collectSubtree(S, Clauses, HasRing);

    if (UnknownRefs) {
      S.Par = ParClass::Serial;
      S.ParWitness = "analysis poisoned: " + UnknownReason;
    } else if (HasRing) {
      S.Par = ParClass::Serial;
      S.ParWitness =
          "rolling ring buffer carries old values across iterations";
    } else {
      const DepEdge *Carrier = nullptr;
      unsigned Checked = 0;
      for (const DepEdge *E : Edges) {
        if (!bothInside(*E, Clauses))
          continue;
        ++Checked;
        if (!Carrier && edgeCarriedAt(*E, S.Loop))
          Carrier = E;
      }
      if (!Carrier) {
        S.Par = ParClass::Doall;
        std::ostringstream OS;
        OS << "no dependence carried by this loop (" << Checked
           << " edge(s) checked)";
        S.ParWitness = OS.str();
      } else {
        std::string Witness;
        if (tryWavefront(S, Clauses, Witness)) {
          S.Par = ParClass::WaveOuter;
          S.ParWitness = Witness;
          S.Body[0].Par = ParClass::WaveInner;
          S.Body[0].ParWitness = "inner loop of the wavefront pair";
          ++Summary.NumWave;
          HAC_TRACE_COUNT("par.wavefront");
          return; // the inner loop is classified; no recursion needed
        }
        S.Par = ParClass::Serial;
        S.ParWitness = "carried dependence " + Carrier->str() + " [" +
                       depTierName(Carrier->Tier) +
                       (Carrier->Definite ? ", definite" : ", maybe") + "]" +
                       (Witness.empty() ? "" : "; wavefront: " + Witness);
      }
    }

    if (S.Par == ParClass::Doall) {
      ++Summary.NumDoall;
      HAC_TRACE_COUNT("par.doall");
    } else {
      ++Summary.NumSerial;
      HAC_TRACE_COUNT("par.serial");
    }
    // Classify nested loops too; backends use the outermost parallel
    // level and run anything nested below it serially.
    for (PlanStmt &C : S.Body)
      if (C.K == PlanStmt::Kind::For)
        classifyFor(C);
  }
};

} // namespace

ParSummary par::planParallel(ExecPlan &Plan,
                             const std::vector<const DepEdge *> &Edges,
                             bool UnknownRefs,
                             const std::string &UnknownReason) {
  HAC_TRACE_SPAN(Span, "par-plan");
  Planner P{Edges, UnknownRefs, UnknownReason, ParSummary{}};
  for (PlanStmt &S : Plan.Stmts)
    if (S.K == PlanStmt::Kind::For)
      P.classifyFor(S);
  if (traceEnabled())
    TraceSink::get().annotate(P.Summary.str());
  return P.Summary;
}
