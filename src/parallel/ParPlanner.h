//===- parallel/ParPlanner.h - Dependence-driven loop classifier -*- C++ -*-==//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ParPlanner consumes the dependence edges a compiled plan still has
/// to honor and classifies every `For` statement as DOALL, wavefront
/// (outer/inner of a 2-deep uniform-distance nest), or serial, recording
/// the decision and its proof witness in the plan itself. Both backends —
/// the LIR evaluator and the C emitter — then execute the same decisions,
/// and hac-verify surfaces the serial witnesses as HAC008 notes.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_PARALLEL_PARPLANNER_H
#define HAC_PARALLEL_PARPLANNER_H

#include "analysis/DepGraph.h"
#include "codegen/ExecPlan.h"
#include "parallel/ParPlan.h"

#include <string>
#include <vector>

namespace hac {
namespace par {

/// Aggregate classification result (also traced as par.* counters).
struct ParSummary {
  unsigned NumDoall = 0;
  /// Number of wavefront *pairs* (outer+inner count as one).
  unsigned NumWave = 0;
  unsigned NumSerial = 0;

  std::string str() const;
};

/// Classifies every For statement of \p Plan in place. \p Edges are the
/// dependence edges the serial schedule still honors (post node
/// splitting); \p UnknownRefs marks a poisoned analysis (every loop then
/// stays serial with the reason as witness).
ParSummary planParallel(ExecPlan &Plan,
                        const std::vector<const DepEdge *> &Edges,
                        bool UnknownRefs = false,
                        const std::string &UnknownReason = "");

} // namespace par
} // namespace hac

#endif // HAC_PARALLEL_PARPLANNER_H
