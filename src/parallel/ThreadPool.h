//===- parallel/ThreadPool.h - Work-stealing worker pool --------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool built for the LIR evaluator's
/// parallel loops: N-1 persistent worker threads plus the calling thread,
/// per-worker task deques (owners pop from the back, thieves steal from
/// the front), and a single blocking entry point `parallelFor` that acts
/// as a barrier — it returns only once every task has finished.
///
/// Tasks must not throw; error reporting happens through whatever state
/// the task closure captures (the evaluator records the lexically first
/// failing iteration under its own mutex).
///
//===----------------------------------------------------------------------===//

#ifndef HAC_PARALLEL_THREADPOOL_H
#define HAC_PARALLEL_THREADPOOL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace hac {
namespace par {

/// One worker's utilization counters, monotonic since pool construction
/// or the last resetStats().
struct WorkerStats {
  uint64_t Tasks = 0;     ///< tasks executed by this worker
  uint64_t Steals = 0;    ///< tasks popped from another worker's deque
  uint64_t IdleNanos = 0; ///< time spent blocked waiting for work
};

/// A consistent-enough snapshot of the pool's utilization counters.
/// Individual counters are exact; cross-counter relations (e.g. Tasks
/// vs Jobs) are only guaranteed when no job is in flight.
struct PoolStats {
  uint64_t Jobs = 0;          ///< parallelFor calls that ran tasks
  uint64_t Tasks = 0;         ///< sum of Workers[i].Tasks
  uint64_t Steals = 0;        ///< sum of Workers[i].Steals
  uint64_t MaxQueueDepth = 0; ///< high-water mark of any deque
  std::vector<WorkerStats> Workers;
};

class ThreadPool {
public:
  /// Creates a pool of \p Threads total workers (the calling thread
  /// counts as one, so Threads - 1 OS threads are spawned). Threads == 0
  /// is treated as defaultThreads().
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total worker count, including the caller.
  unsigned threads() const;

  /// Runs Fn(Task) for every Task in [0, NumTasks), distributing tasks
  /// over the workers' deques; the caller participates and the call
  /// returns only when all tasks are done (a barrier). Not reentrant:
  /// Fn must not call parallelFor on the same pool.
  void parallelFor(size_t NumTasks, const std::function<void(size_t)> &Fn);

  /// Enqueues \p Fn on the pool's detached background lane and returns
  /// immediately. Background tasks run FIFO on one dedicated thread
  /// (created lazily on first submit) so they never contend with
  /// parallelFor's barrier workers — the JIT uses this for async kernel
  /// compilation while the evaluator keeps running. Tasks must not
  /// throw. The destructor drains the lane before joining.
  void submit(std::function<void()> Fn);

  /// Blocks until every submitted background task has finished. A no-op
  /// when nothing was ever submitted.
  void waitBackground();

  /// Background tasks still queued or running.
  size_t pendingBackground() const;

  /// Snapshots the utilization counters (relaxed atomic loads — callable
  /// at any time, including while a job runs).
  PoolStats stats() const;

  /// Zeroes all utilization counters.
  void resetStats();

  /// The pool lane index of the calling thread: 0 for the thread that
  /// invoked parallelFor (and for any thread outside a pool), 1..N-1 for
  /// the pool's own workers. Timeline spans use this as their lane id.
  static unsigned currentWorker();

  /// The HAC_THREADS environment override when set to a positive number,
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  static unsigned defaultThreads();

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace par
} // namespace hac

#endif // HAC_PARALLEL_THREADPOOL_H
