//===- parallel/ThreadPool.h - Work-stealing worker pool --------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool built for the LIR evaluator's
/// parallel loops: N-1 persistent worker threads plus the calling thread,
/// per-worker task deques (owners pop from the back, thieves steal from
/// the front), and a single blocking entry point `parallelFor` that acts
/// as a barrier — it returns only once every task has finished.
///
/// Tasks must not throw; error reporting happens through whatever state
/// the task closure captures (the evaluator records the lexically first
/// failing iteration under its own mutex).
///
//===----------------------------------------------------------------------===//

#ifndef HAC_PARALLEL_THREADPOOL_H
#define HAC_PARALLEL_THREADPOOL_H

#include <cstddef>
#include <functional>
#include <memory>

namespace hac {
namespace par {

class ThreadPool {
public:
  /// Creates a pool of \p Threads total workers (the calling thread
  /// counts as one, so Threads - 1 OS threads are spawned). Threads == 0
  /// is treated as defaultThreads().
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total worker count, including the caller.
  unsigned threads() const;

  /// Runs Fn(Task) for every Task in [0, NumTasks), distributing tasks
  /// over the workers' deques; the caller participates and the call
  /// returns only when all tasks are done (a barrier). Not reentrant:
  /// Fn must not call parallelFor on the same pool.
  void parallelFor(size_t NumTasks, const std::function<void(size_t)> &Fn);

  /// The HAC_THREADS environment override when set to a positive number,
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  static unsigned defaultThreads();

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace par
} // namespace hac

#endif // HAC_PARALLEL_THREADPOOL_H
