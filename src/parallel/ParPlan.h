//===- parallel/ParPlan.h - Parallel classification of plan loops -*- C++ -*-=//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel-classification lattice shared by the planner, the plan IR,
/// the LIR, and both backends. Every `For` statement in an ExecPlan gets
/// exactly one class:
///
///   Serial     — a dependence (or a node-splitting temporary) is carried
///                by the loop; iterations must run in order.
///   Doall      — no dependence is carried by the loop: iterations are
///                independent and may be block-partitioned across workers.
///   WaveOuter/ — a 2-deep nest whose carried dependences all have uniform
///   WaveInner    distance (d1, d2) with d1 + d2 >= 1: the anti-diagonal
///                fronts f = it_outer + it_inner are executed in sequence
///                with a barrier between fronts, and the cells of one front
///                run in parallel (the classic wavefront / hyperplane
///                transform; the SOR kernel is the motivating case).
///
/// This header is dependency-free on purpose: codegen stores a ParClass in
/// every PlanStmt without linking the planner, and the LIR mirrors the
/// classes as instruction flags.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_PARALLEL_PARPLAN_H
#define HAC_PARALLEL_PARPLAN_H

#include <cstdint>

namespace hac {
namespace par {

/// Parallel execution class of one plan loop (see file comment).
enum class ParClass : uint8_t {
  Serial = 0,
  Doall,
  WaveOuter,
  WaveInner,
};

inline const char *parClassName(ParClass C) {
  switch (C) {
  case ParClass::Serial:
    return "serial";
  case ParClass::Doall:
    return "doall";
  case ParClass::WaveOuter:
    return "wave-outer";
  case ParClass::WaveInner:
    return "wave-inner";
  }
  return "?";
}

} // namespace par
} // namespace hac

#endif // HAC_PARALLEL_PARPLAN_H
