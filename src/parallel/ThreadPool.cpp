//===- parallel/ThreadPool.cpp - Work-stealing worker pool ----------------===//

#include "parallel/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace hac;
using namespace hac::par;

namespace {

/// One worker's deque. The owner pops from the back, thieves pop from the
/// front; both sides take the mutex — tasks here are loop *chunks*, so
/// queue traffic is a handful of operations per parallelFor, not per
/// iteration, and an uncontended mutex is cheaper than getting a lock-free
/// deque wrong.
struct WorkerQueue {
  std::mutex M;
  std::deque<size_t> Q;
};

/// One worker's utilization counters. All relaxed: each counter is an
/// independent monotonic tally, and readers (stats()) only need eventual
/// per-counter values, not cross-counter ordering. Cache-line padded so
/// workers never bounce each other's counters.
struct alignas(64) WStats {
  std::atomic<uint64_t> Tasks{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> IdleNanos{0};
};

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The calling thread's lane within its pool (0 outside a pool).
thread_local unsigned CurWorker = 0;

} // namespace

struct ThreadPool::Impl {
  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::unique_ptr<WStats>> Stats;
  std::atomic<uint64_t> Jobs{0};
  std::atomic<uint64_t> MaxQueueDepth{0};

  std::mutex JobM;
  std::condition_variable JobCV;  // workers wait here between jobs
  std::condition_variable DoneCV; // parallelFor waits here for the barrier
  const std::function<void(size_t)> *JobFn = nullptr;
  std::atomic<size_t> Remaining{0};
  uint64_t JobGen = 0;
  bool Shutdown = false;

  // The detached background lane: one dedicated thread, FIFO queue,
  // created lazily by the first submit() so pools that never compile
  // anything pay nothing.
  mutable std::mutex BgM;
  std::condition_variable BgCV;     // the background thread waits here
  std::condition_variable BgIdleCV; // waitBackground() waits here
  std::deque<std::function<void()>> BgQueue;
  std::thread BgThread;
  size_t BgPending = 0; // queued + running
  bool BgShutdown = false;

  void backgroundLoop() {
    for (;;) {
      std::function<void()> Fn;
      {
        std::unique_lock<std::mutex> Lock(BgM);
        BgCV.wait(Lock, [&] { return BgShutdown || !BgQueue.empty(); });
        if (BgQueue.empty())
          return; // shutdown with a drained queue
        Fn = std::move(BgQueue.front());
        BgQueue.pop_front();
      }
      Fn();
      {
        std::lock_guard<std::mutex> Lock(BgM);
        --BgPending;
        if (BgPending == 0)
          BgIdleCV.notify_all();
      }
    }
  }

  /// Pops one task for worker \p Self: own deque from the back first,
  /// then steal from the other deques' fronts. Returns false when no
  /// task is available anywhere.
  bool popTask(unsigned Self, size_t &Task) {
    {
      WorkerQueue &Own = *Queues[Self];
      std::lock_guard<std::mutex> Lock(Own.M);
      if (!Own.Q.empty()) {
        Task = Own.Q.back();
        Own.Q.pop_back();
        return true;
      }
    }
    for (unsigned I = 1; I != NumThreads; ++I) {
      WorkerQueue &Victim = *Queues[(Self + I) % NumThreads];
      std::lock_guard<std::mutex> Lock(Victim.M);
      if (!Victim.Q.empty()) {
        Task = Victim.Q.front();
        Victim.Q.pop_front();
        Stats[Self]->Steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Drains every available task for worker \p Self, decrementing the
  /// barrier count and waking the caller when the last task finishes.
  void drain(unsigned Self, const std::function<void(size_t)> &Fn) {
    size_t Task;
    while (popTask(Self, Task)) {
      Fn(Task);
      Stats[Self]->Tasks.fetch_add(1, std::memory_order_relaxed);
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(JobM);
        DoneCV.notify_all();
      }
    }
  }

  void workerLoop(unsigned Self) {
    CurWorker = Self;
    uint64_t SeenGen = 0;
    for (;;) {
      const std::function<void(size_t)> *Fn = nullptr;
      {
        uint64_t T0 = nowNanos();
        std::unique_lock<std::mutex> Lock(JobM);
        JobCV.wait(Lock,
                   [&] { return Shutdown || JobGen != SeenGen; });
        Stats[Self]->IdleNanos.fetch_add(nowNanos() - T0,
                                         std::memory_order_relaxed);
        if (Shutdown)
          return;
        SeenGen = JobGen;
        Fn = JobFn;
      }
      drain(Self, *Fn);
    }
  }
};

ThreadPool::ThreadPool(unsigned Threads) : P(std::make_unique<Impl>()) {
  if (Threads == 0)
    Threads = defaultThreads();
  P->NumThreads = Threads;
  P->Queues.reserve(Threads);
  P->Stats.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I) {
    P->Queues.push_back(std::make_unique<WorkerQueue>());
    P->Stats.push_back(std::make_unique<WStats>());
  }
  // Worker 0 is the calling thread.
  for (unsigned I = 1; I != Threads; ++I)
    P->Workers.emplace_back([this, I] { P->workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(P->JobM);
    P->Shutdown = true;
    P->JobCV.notify_all();
  }
  for (std::thread &T : P->Workers)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(P->BgM);
    P->BgShutdown = true;
    P->BgCV.notify_all();
  }
  if (P->BgThread.joinable())
    P->BgThread.join();
}

void ThreadPool::submit(std::function<void()> Fn) {
  std::lock_guard<std::mutex> Lock(P->BgM);
  if (!P->BgThread.joinable())
    P->BgThread = std::thread([this] { P->backgroundLoop(); });
  P->BgQueue.push_back(std::move(Fn));
  ++P->BgPending;
  P->BgCV.notify_one();
}

void ThreadPool::waitBackground() {
  std::unique_lock<std::mutex> Lock(P->BgM);
  P->BgIdleCV.wait(Lock, [&] { return P->BgPending == 0; });
}

size_t ThreadPool::pendingBackground() const {
  std::lock_guard<std::mutex> Lock(P->BgM);
  return P->BgPending;
}

unsigned ThreadPool::threads() const { return P->NumThreads; }

void ThreadPool::parallelFor(size_t NumTasks,
                             const std::function<void(size_t)> &Fn) {
  if (NumTasks == 0)
    return;
  P->Jobs.fetch_add(1, std::memory_order_relaxed);
  if (P->NumThreads == 1 || NumTasks == 1) {
    for (size_t T = 0; T != NumTasks; ++T)
      Fn(T);
    P->Stats[0]->Tasks.fetch_add(NumTasks, std::memory_order_relaxed);
    return;
  }
  // Round-robin the tasks over the deques, then publish the job.
  for (size_t T = 0; T != NumTasks; ++T) {
    WorkerQueue &Q = *P->Queues[T % P->NumThreads];
    std::lock_guard<std::mutex> Lock(Q.M);
    Q.Q.push_back(T);
    uint64_t Depth = Q.Q.size();
    uint64_t Prev = P->MaxQueueDepth.load(std::memory_order_relaxed);
    while (Prev < Depth && !P->MaxQueueDepth.compare_exchange_weak(
                               Prev, Depth, std::memory_order_relaxed))
      ;
  }
  {
    std::lock_guard<std::mutex> Lock(P->JobM);
    P->JobFn = &Fn;
    P->Remaining.store(NumTasks, std::memory_order_relaxed);
    ++P->JobGen;
    P->JobCV.notify_all();
  }
  // The caller works too, then waits out the barrier.
  P->drain(0, Fn);
  uint64_t T0 = nowNanos();
  std::unique_lock<std::mutex> Lock(P->JobM);
  P->DoneCV.wait(Lock, [&] {
    return P->Remaining.load(std::memory_order_acquire) == 0;
  });
  P->Stats[0]->IdleNanos.fetch_add(nowNanos() - T0,
                                   std::memory_order_relaxed);
  P->JobFn = nullptr;
}

PoolStats ThreadPool::stats() const {
  PoolStats S;
  S.Jobs = P->Jobs.load(std::memory_order_relaxed);
  S.MaxQueueDepth = P->MaxQueueDepth.load(std::memory_order_relaxed);
  S.Workers.reserve(P->NumThreads);
  for (const auto &W : P->Stats) {
    WorkerStats WS;
    WS.Tasks = W->Tasks.load(std::memory_order_relaxed);
    WS.Steals = W->Steals.load(std::memory_order_relaxed);
    WS.IdleNanos = W->IdleNanos.load(std::memory_order_relaxed);
    S.Tasks += WS.Tasks;
    S.Steals += WS.Steals;
    S.Workers.push_back(WS);
  }
  return S;
}

void ThreadPool::resetStats() {
  P->Jobs.store(0, std::memory_order_relaxed);
  P->MaxQueueDepth.store(0, std::memory_order_relaxed);
  for (const auto &W : P->Stats) {
    W->Tasks.store(0, std::memory_order_relaxed);
    W->Steals.store(0, std::memory_order_relaxed);
    W->IdleNanos.store(0, std::memory_order_relaxed);
  }
}

unsigned ThreadPool::currentWorker() { return CurWorker; }

unsigned ThreadPool::defaultThreads() {
  if (const char *Env = std::getenv("HAC_THREADS"); Env && *Env) {
    char *End = nullptr;
    errno = 0;
    long N = std::strtol(Env, &End, 10);
    if (errno != 0 || End == Env || *End != '\0') {
      // Garbage is refused, not silently treated as 0 threads.
      std::fprintf(stderr,
                   "hac: warning: HAC_THREADS='%s' is not an integer; "
                   "using hardware concurrency\n",
                   Env);
    } else if (N < 1) {
      std::fprintf(stderr,
                   "hac: warning: HAC_THREADS=%ld clamped to 1\n", N);
      return 1;
    } else if (N > 4096) {
      std::fprintf(stderr,
                   "hac: warning: HAC_THREADS=%ld clamped to 4096\n", N);
      return 4096;
    } else {
      return static_cast<unsigned>(N);
    }
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}
