//===- verify/SarifEmitter.h - SARIF 2.1.0 output ---------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the diagnostics collected by a DiagnosticEngine as a SARIF
/// 2.1.0 log (https://docs.oasis-open.org/sarif/sarif/v2.1.0/), the
/// interchange format CI systems and editors ingest. One run, driver
/// "hac-verify", with the full HACNNN rule table in
/// tool.driver.rules; each diagnostic becomes a result (ruleId omitted
/// for untagged compile-phase diagnostics) and its notes become
/// relatedLocations.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_VERIFY_SARIFEMITTER_H
#define HAC_VERIFY_SARIFEMITTER_H

#include "support/Diagnostics.h"

#include <ostream>
#include <string>

namespace hac {

/// Writes a complete SARIF 2.1.0 document for the diagnostics in
/// \p Diags. \p ArtifactUri names the analyzed source file (used for the
/// run's artifact and every result location).
void writeSarif(std::ostream &OS, const DiagnosticEngine &Diags,
                const std::string &ArtifactUri);

} // namespace hac

#endif // HAC_VERIFY_SARIFEMITTER_H
