//===- verify/Verifier.cpp - Source-located comprehension verifier --------===//

#include "verify/Verifier.h"

#include "analysis/DependenceTest.h"
#include "comp/ConstFold.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <functional>
#include <optional>
#include <set>
#include <sstream>

using namespace hac;

namespace {

const char *const TraceCounterNames[kNumRules] = {
    "verify.hac001", "verify.hac002", "verify.hac003", "verify.hac004",
    "verify.hac005", "verify.hac006", "verify.hac007", "verify.hac008",
    "verify.hac009", "verify.hac010", "verify.hac011", "verify.hac012",
    "verify.hac013", "verify.hac014",
};

Diagnostic finding(RuleID Rule, DiagSeverity Severity, SourceLoc Loc,
                   std::string Message) {
  Diagnostic D;
  D.Rule = Rule;
  D.Severity = Severity;
  D.Loc = Loc;
  D.Message = std::move(Message);
  return D;
}

std::string rangeStr(int64_t Min, int64_t Max, int64_t Lo, int64_t Hi) {
  std::ostringstream OS;
  OS << "range [" << Min << ", " << Max << "] vs declared [" << Lo << ", "
     << Hi << "]";
  return OS.str();
}

/// "e.g. index (5, 1) when i = 1, j = 1" for a concrete OOB witness.
std::string witnessNote(const std::vector<int64_t> &Index,
                        const std::vector<std::pair<std::string, int64_t>>
                            &Assign) {
  std::ostringstream OS;
  OS << "e.g. index (";
  for (size_t I = 0; I != Index.size(); ++I)
    OS << (I ? ", " : "") << Index[I];
  OS << ")";
  if (!Assign.empty()) {
    OS << " when ";
    for (size_t I = 0; I != Assign.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Assign[I].first << " = " << Assign[I].second;
    }
  }
  return OS.str();
}

/// Constant-folds a boolean guard condition; nullopt when not constant.
/// Only the shapes a const-false guard realistically takes are handled:
/// boolean literals, integer comparisons of constants, and the boolean
/// connectives over those.
std::optional<bool> evalConstBool(const Expr *E, const ParamEnv &Params) {
  if (!E)
    return std::nullopt;
  if (const auto *B = dyn_cast<BoolLitExpr>(E))
    return B->value();
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() != UnaryOpKind::Not)
      return std::nullopt;
    auto V = evalConstBool(U->operand(), Params);
    return V ? std::optional<bool>(!*V) : std::nullopt;
  }
  const auto *Bin = dyn_cast<BinaryExpr>(E);
  if (!Bin)
    return std::nullopt;
  switch (Bin->op()) {
  case BinaryOpKind::And: {
    auto L = evalConstBool(Bin->lhs(), Params);
    auto R = evalConstBool(Bin->rhs(), Params);
    if ((L && !*L) || (R && !*R))
      return false;
    if (L && R)
      return *L && *R;
    return std::nullopt;
  }
  case BinaryOpKind::Or: {
    auto L = evalConstBool(Bin->lhs(), Params);
    auto R = evalConstBool(Bin->rhs(), Params);
    if ((L && *L) || (R && *R))
      return true;
    if (L && R)
      return *L || *R;
    return std::nullopt;
  }
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne:
  case BinaryOpKind::Lt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Ge: {
    int64_t L = 0, R = 0;
    if (!tryEvalConstInt(Bin->lhs(), Params, L) ||
        !tryEvalConstInt(Bin->rhs(), Params, R))
      return std::nullopt;
    switch (Bin->op()) {
    case BinaryOpKind::Eq:
      return L == R;
    case BinaryOpKind::Ne:
      return L != R;
    case BinaryOpKind::Lt:
      return L < R;
    case BinaryOpKind::Le:
      return L <= R;
    case BinaryOpKind::Gt:
      return L > R;
    default:
      return L >= R;
    }
  }
  default:
    return std::nullopt;
  }
}

} // namespace

void Verifier::emit(Diagnostic D) {
  RuleID Rule = D.Rule;
  if (!Diags.report(std::move(D)))
    return;
  unsigned Idx = static_cast<unsigned>(Rule) - 1;
  ++Result.Hits[Idx];
  HAC_TRACE_COUNT(TraceCounterNames[Idx]);
}

void Verifier::checkNonAffineWrites(const CoverageAnalysis &Coverage) {
  for (const CoverageIssue &I : Coverage.Issues)
    if (I.Kind == CoverageIssueKind::NonAffineSubscript)
      emit(finding(RuleID::HAC001, DiagSeverity::Warning, I.Loc,
                   "clause #" + std::to_string(I.ClauseId) +
                       " write subscript is not an affine function of the "
                       "loop indices; its range cannot be proven"));
}

void Verifier::checkCollisions(const CollisionAnalysis &Collisions) {
  if (Collisions.Witness) {
    const CollisionWitness &W = *Collisions.Witness;
    Diagnostic D = finding(
        RuleID::HAC002, DiagSeverity::Error, W.LocA,
        "clauses #" + std::to_string(W.ClauseA) + " and #" +
            std::to_string(W.ClauseB) +
            " definitely write the same element");
    D.Notes.push_back(makeNote(W.LocB, "clause #" +
                                           std::to_string(W.ClauseB) +
                                           " writes here"));
    D.Notes.push_back(
        makeNote(SourceLoc(), "collision under directions " +
                                  dirVectorToString(W.Dirs)));
    emit(std::move(D));
  }
  for (const UnresolvedCollision &U : Collisions.Unresolved) {
    Diagnostic D = finding(
        RuleID::HAC002, DiagSeverity::Warning, U.LocA,
        "clauses #" + std::to_string(U.ClauseA) + " and #" +
            std::to_string(U.ClauseB) +
            " may write the same element; the runtime collision check "
            "stays on");
    D.Notes.push_back(makeNote(U.LocB, "clause #" +
                                           std::to_string(U.ClauseB) +
                                           " writes here"));
    for (const DirVector &Dirs : U.Dirs)
      D.Notes.push_back(makeNote(SourceLoc(),
                                 "possible collision under directions " +
                                     dirVectorToString(Dirs)));
    if (U.NonAffine)
      D.Notes.push_back(makeNote(
          SourceLoc(), "a subscript in the pair is not affine, so the "
                       "dependence test does not apply"));
    emit(std::move(D));
  }
}

void Verifier::checkCoverage(const std::string &Name,
                             const CoverageAnalysis &Coverage) {
  if (Coverage.NoEmpties == CheckOutcome::Proven)
    return;

  if (Coverage.NoEmpties == CheckOutcome::Disproven) {
    // Definitely too few definitions: some element is provably undefined.
    for (const CoverageIssue &I : Coverage.Issues)
      if (I.Kind == CoverageIssueKind::TooFewDefinitions)
        emit(finding(RuleID::HAC003, DiagSeverity::Error, I.Loc,
                     "array '" + Name +
                         "' definitely has undefined elements: only " +
                         std::to_string(I.Min) + " definitions for " +
                         std::to_string(I.Max) + " elements"));
    return;
  }

  // Unknown: gather the reasons as notes under one finding.
  Diagnostic D =
      finding(RuleID::HAC003, DiagSeverity::Warning, SourceLoc(),
              "array '" + Name +
                  "' may be left with undefined elements; the runtime "
                  "definedness check stays on");
  for (const CoverageIssue &I : Coverage.Issues) {
    switch (I.Kind) {
    case CoverageIssueKind::NotAnalyzable:
    case CoverageIssueKind::GuardedClause:
    case CoverageIssueKind::PossiblyOutOfBounds:
      D.Notes.push_back(makeNote(I.Loc, I.str()));
      break;
    default:
      break;
    }
  }
  // Anchor the finding at the first located reason, if any.
  for (const Diagnostic &N : D.Notes)
    if (N.Loc.isValid()) {
      D.Loc = N.Loc;
      break;
    }
  emit(std::move(D));
}

void Verifier::checkWriteBounds(const CoverageAnalysis &Coverage) {
  for (const CoverageIssue &I : Coverage.Issues) {
    if (I.Kind == CoverageIssueKind::RankMismatch) {
      emit(finding(RuleID::HAC004, DiagSeverity::Error, I.Loc,
                   "clause #" + std::to_string(I.ClauseId) +
                       " writes with rank " + std::to_string(I.Min) +
                       " but the array has rank " + std::to_string(I.Max)));
      continue;
    }
    if (I.Kind != CoverageIssueKind::DefiniteOutOfBounds)
      continue;
    Diagnostic D = finding(
        RuleID::HAC004, DiagSeverity::Error, I.Loc,
        "clause #" + std::to_string(I.ClauseId) +
            " always writes out of bounds: dimension " +
            std::to_string(I.Dim) + " " +
            rangeStr(I.Min, I.Max, I.Lo, I.Hi));
    if (!I.WitnessIndex.empty())
      D.Notes.push_back(
          makeNote(SourceLoc(), witnessNote(I.WitnessIndex,
                                            I.WitnessAssign)));
    emit(std::move(D));
  }
}

void Verifier::checkReads(const ReadBoundsAnalysis &Reads) {
  for (const ReadCheck &R : Reads.Reads) {
    if (!R.Affine) {
      emit(finding(RuleID::HAC001, DiagSeverity::Warning, R.Loc,
                   R.ArrayName == "<computed>"
                       ? "array read through a computed base expression; "
                         "its bounds cannot be proven"
                       : "read of '" + R.ArrayName +
                             "' has a non-affine subscript; its bounds "
                             "cannot be proven"));
      continue;
    }
    if (!R.DimsKnown)
      continue; // nothing to prove against
    if (R.RankMismatch) {
      emit(finding(RuleID::HAC005, DiagSeverity::Error, R.Loc,
                   "read of '" + R.ArrayName +
                       "' has a subscript rank that does not match the "
                       "array's declared rank"));
      continue;
    }
    if (R.InBounds == CheckOutcome::Disproven) {
      // A guard (ignored by the range analysis) may keep the read from
      // ever executing, so a guarded definite violation is a warning.
      Diagnostic D = finding(
          RuleID::HAC005,
          R.Guarded ? DiagSeverity::Warning : DiagSeverity::Error, R.Loc,
          "read of '" + R.ArrayName +
              "' is always out of bounds: dimension " +
              std::to_string(R.Dim) + " " +
              rangeStr(R.Min, R.Max, R.Lo, R.Hi));
      if (!R.WitnessIndex.empty())
        D.Notes.push_back(
            makeNote(SourceLoc(), witnessNote(R.WitnessIndex,
                                              R.WitnessAssign)));
      if (R.Guarded)
        D.Notes.push_back(makeNote(
            SourceLoc(), "the reading clause is guarded; the read may "
                         "never execute"));
      emit(std::move(D));
      continue;
    }
    if (R.InBounds == CheckOutcome::Unknown)
      emit(finding(RuleID::HAC005, DiagSeverity::Warning, R.Loc,
                   "read of '" + R.ArrayName +
                       "' may be out of bounds: dimension " +
                       std::to_string(R.Dim) + " " +
                       rangeStr(R.Min, R.Max, R.Lo, R.Hi)));
  }
}

void Verifier::checkDeadClauses(const CompNest &Nest,
                                const ParamEnv &Params) {
  if (!Nest.Analyzable)
    return;
  for (const ClauseNode *Clause : Nest.Clauses) {
    const LoopNode *Dead = nullptr;
    for (const LoopNode *L : Clause->loops())
      if (L->bounds().tripCount() <= 0) {
        Dead = L;
        break;
      }
    if (Dead) {
      emit(finding(RuleID::HAC006, DiagSeverity::Warning, Clause->loc(),
                   "clause #" + std::to_string(Clause->id()) +
                       " can never execute: loop '" + Dead->var() +
                       "' has a nonpositive trip count"));
      continue;
    }
    for (const GuardNode *G : Clause->guards()) {
      auto V = evalConstBool(G->cond(), Params);
      if (V && !*V) {
        emit(finding(RuleID::HAC006, DiagSeverity::Warning, Clause->loc(),
                     "clause #" + std::to_string(Clause->id()) +
                         " can never execute: a guard condition is "
                         "constant false"));
        break;
      }
    }
  }
}

void Verifier::checkFallback(bool Compiled, const std::string &Reason) {
  if (Compiled)
    return;
  emit(finding(RuleID::HAC007, DiagSeverity::Note, SourceLoc(),
               Reason.empty()
                   ? std::string("program falls back to the lazy "
                                 "interpreter")
                   : "program falls back to the lazy interpreter: " +
                         Reason));
}

namespace {

/// First source location of any clause stored under \p S, so HAC008
/// findings anchor at the body the serial loop surrounds.
SourceLoc firstClauseLoc(const PlanStmt &S) {
  if (S.K == PlanStmt::Kind::Store)
    return S.Clause ? S.Clause->loc() : SourceLoc();
  for (const PlanStmt &C : S.Body) {
    SourceLoc L = firstClauseLoc(C);
    if (L.isValid())
      return L;
  }
  return SourceLoc();
}

} // namespace

void Verifier::checkParallel(const ExecPlan &Plan) {
  // Walk every For in the plan tree. The planner classifies each one and
  // leaves a witness; a Serial class with a witness is a "why not
  // parallel" explanation worth surfacing. The wavefront inner loop is
  // part of its pair and never reported on its own.
  std::function<void(const PlanStmt &)> Walk = [&](const PlanStmt &S) {
    if (S.K != PlanStmt::Kind::For)
      return;
    if (S.Par == par::ParClass::Serial && !S.ParWitness.empty())
      emit(finding(RuleID::HAC008, DiagSeverity::Note, firstClauseLoc(S),
                   "loop over '" + (S.Loop ? S.Loop->var() : "?") +
                       "' is not parallelizable: " + S.ParWitness));
    for (const PlanStmt &C : S.Body)
      Walk(C);
  };
  for (const PlanStmt &S : Plan.Stmts)
    Walk(S);
}

void Verifier::checkDependencePrecision(const DepGraph &Graph) {
  for (const DepPrecisionNote &N : Graph.PrecisionNotes) {
    Diagnostic D = finding(
        RuleID::HAC013, DiagSeverity::Note, N.SrcLoc,
        "conservative dependence tests were imprecise for clauses #" +
            std::to_string(N.Src) + " and #" + std::to_string(N.Dst) +
            " (" + depKindName(N.Kind) +
            "): the exact Presburger tier refuted " +
            std::to_string(N.Refuted.size()) +
            " direction vector(s) GCD/Banerjee could not");
    if (N.DstLoc.isValid() && !(N.DstLoc == N.SrcLoc))
      D.Notes.push_back(makeNote(
          N.DstLoc, "clause #" + std::to_string(N.Dst) + " is here"));
    for (const DirVector &Dirs : N.Refuted)
      D.Notes.push_back(makeNote(
          SourceLoc(), "refuted directions " + dirVectorToString(Dirs)));
    emit(std::move(D));
  }
  for (const DepBudgetNote &N : Graph.BudgetNotes) {
    Diagnostic D = finding(
        RuleID::HAC014, DiagSeverity::Warning, N.SrcLoc,
        "dependence budget exhausted for clauses #" +
            std::to_string(N.Src) + " and #" + std::to_string(N.Dst) +
            " (" + depKindName(N.Kind) +
            "): the pair is conservatively assumed dependent; raise "
            "HAC_DEP_BUDGET to retry");
    D.Notes.push_back(
        makeNote(SourceLoc(), "gave up on the constraint system " +
                                  (N.System.empty() ? "{}" : N.System)));
    emit(std::move(D));
  }
}

VerifyResult Verifier::verify(const CompiledArray &CA) {
  HAC_TRACE_SPAN(Span, "verify");
  Result = VerifyResult();
  checkNonAffineWrites(CA.Coverage);
  checkCollisions(CA.Collisions);
  // Accumulated arrays have no undefined elements by construction —
  // untouched elements hold the initial value (Section 3) — so the
  // empties rule (HAC003) does not apply.
  if (!CA.IsAccum)
    checkCoverage(CA.Name, CA.Coverage);
  checkWriteBounds(CA.Coverage);
  checkReads(CA.ReadBounds);
  checkDeadClauses(CA.Nest, CA.Params);
  checkDependencePrecision(CA.Graph);
  checkFallback(CA.Thunkless, CA.FallbackReason);
  if (CA.Thunkless)
    checkParallel(CA.Plan);
  if (LIROptions)
    foldLIR(verifyLIR(CA, Diags, *LIROptions));
  return Result;
}

VerifyResult Verifier::verify(const CompiledUpdate &CU) {
  HAC_TRACE_SPAN(Span, "verify");
  Result = VerifyResult();
  checkReads(CU.ReadBounds);
  checkDeadClauses(CU.Nest, CU.Params);
  checkDependencePrecision(CU.Graph);
  checkFallback(CU.InPlace, CU.FallbackReason);
  if (CU.InPlace)
    checkParallel(CU.Plan);
  if (LIROptions)
    foldLIR(verifyLIR(CU, Diags, *LIROptions));
  return Result;
}

void Verifier::foldLIR(const LIRVerifyOutcome &Out) {
  if (!Out.Ran)
    return;
  for (unsigned I = 0; I != kNumRules; ++I) {
    Result.Hits[I] += Out.Hits[I];
    for (unsigned K = 0; K != Out.Hits[I]; ++K)
      HAC_TRACE_COUNT(TraceCounterNames[I]);
  }
}
