//===- verify/Rules.cpp - The HACNNN rule taxonomy ------------------------===//

#include "verify/Rules.h"

#include <cassert>
#include <cctype>

using namespace hac;

namespace {

// The published taxonomy. Append-only: new rules take fresh numbers and
// retired ones are never recycled (see DESIGN.md "Static verifier").
const std::array<RuleInfo, kNumRules> Rules = {{
    {RuleID::HAC001, "non-affine-subscript",
     "A subscript is not an affine function of the loop indices, so the "
     "range proofs cannot see through it and runtime checks remain.",
     DiagSeverity::Warning},
    {RuleID::HAC002, "possible-write-collision",
     "Two s/v clause instances may write the same element; the runtime "
     "collision check stays on (paper Section 7).",
     DiagSeverity::Warning},
    {RuleID::HAC003, "possibly-undefined-elements",
     "Some array elements may be left without a definition; the runtime "
     "definedness check stays on (paper Section 4).",
     DiagSeverity::Warning},
    {RuleID::HAC004, "definite-out-of-bounds-write",
     "Every instance of a clause writes outside the declared array "
     "bounds.",
     DiagSeverity::Error},
    {RuleID::HAC005, "out-of-bounds-read",
     "An affine array read's subscript range leaves the array's declared "
     "extents.",
     DiagSeverity::Error},
    {RuleID::HAC006, "dead-clause",
     "A clause can never execute: a surrounding loop has a nonpositive "
     "trip count or a guard is constant false.",
     DiagSeverity::Warning},
    {RuleID::HAC007, "fallback-forced",
     "The program cannot be compiled thunklessly and falls back to the "
     "lazy interpreter; explains why.",
     DiagSeverity::Note},
    {RuleID::HAC008, "loop-not-parallel",
     "A loop stays serial under the parallel planner: a carried "
     "dependence (or poisoned analysis) prevents DOALL and wavefront "
     "execution; the witness explains which.",
     DiagSeverity::Note},
    {RuleID::HAC009, "unsound-check-elimination",
     "The LIR translation validator could not re-derive a safety fact "
     "(in-bounds, nonzero divisor, write disjointness) that an earlier "
     "phase claimed proven when it dropped a runtime check.",
     DiagSeverity::Error},
    {RuleID::HAC010, "doall-write-overlap",
     "Two iterations of a DOALL-classified loop provably write the same "
     "target element; running it in parallel races.",
     DiagSeverity::Error},
    {RuleID::HAC011, "wavefront-cross-front-write",
     "A store inside a wavefront pair provably writes the same element "
     "from two points on the same anti-diagonal front; the wavefront "
     "schedule races.",
     DiagSeverity::Error},
    {RuleID::HAC012, "late-proven-check-elimination",
     "A residual runtime check the front end could not remove was proven "
     "redundant by the post-optimization LIR range analysis and deleted.",
     DiagSeverity::Note},
    {RuleID::HAC013, "conservative-tier-imprecision",
     "The GCD/Banerjee tiers left a dependence \"maybe\" that the exact "
     "Presburger (Omega) tier refuted: the conservative tests alone would "
     "have kept a check or serialized a loop unnecessarily.",
     DiagSeverity::Note},
    {RuleID::HAC014, "dependence-budget-exhausted",
     "An Omega dependence query ran out of its step budget "
     "(HAC_DEP_BUDGET) and the pair was conservatively assumed dependent; "
     "the witness renders the constraint system it gave up on.",
     DiagSeverity::Warning},
}};

} // namespace

const RuleInfo &hac::ruleInfo(RuleID Id) {
  assert(Id != RuleID::None && "RuleID::None has no metadata");
  return Rules[static_cast<unsigned>(Id) - 1];
}

const std::array<RuleInfo, kNumRules> &hac::allRules() { return Rules; }

RuleParseStatus hac::parseRuleName(const std::string &Spelling,
                                   RuleID &Out) {
  Out = RuleID::None;
  // Exactly "hacNNN" (case-insensitive prefix, exactly three digits).
  // "hac1", "hac0005", and "hac005x" are malformed, never silently
  // accepted or rejected based on where the garbage happens to fall.
  if (Spelling.size() != 6)
    return RuleParseStatus::Malformed;
  if ((Spelling[0] != 'h' && Spelling[0] != 'H') ||
      (Spelling[1] != 'a' && Spelling[1] != 'A') ||
      (Spelling[2] != 'c' && Spelling[2] != 'C'))
    return RuleParseStatus::Malformed;
  unsigned N = 0;
  for (size_t I = 3; I != 6; ++I) {
    if (!std::isdigit(static_cast<unsigned char>(Spelling[I])))
      return RuleParseStatus::Malformed;
    N = N * 10 + static_cast<unsigned>(Spelling[I] - '0');
  }
  Out = ruleIdFromNumber(N);
  // Well-formed but unassigned (hac000, hac999): callers warn instead of
  // silently accepting a -Wno- flag that disables nothing.
  return Out == RuleID::None ? RuleParseStatus::UnknownRule
                             : RuleParseStatus::Ok;
}

RuleID hac::parseRuleName(const std::string &Spelling) {
  RuleID Out = RuleID::None;
  parseRuleName(Spelling, Out);
  return Out;
}
