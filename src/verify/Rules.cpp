//===- verify/Rules.cpp - The HACNNN rule taxonomy ------------------------===//

#include "verify/Rules.h"

#include <cassert>
#include <cctype>

using namespace hac;

namespace {

// The published taxonomy. Append-only: new rules take fresh numbers and
// retired ones are never recycled (see DESIGN.md "Static verifier").
const std::array<RuleInfo, kNumRules> Rules = {{
    {RuleID::HAC001, "non-affine-subscript",
     "A subscript is not an affine function of the loop indices, so the "
     "range proofs cannot see through it and runtime checks remain.",
     DiagSeverity::Warning},
    {RuleID::HAC002, "possible-write-collision",
     "Two s/v clause instances may write the same element; the runtime "
     "collision check stays on (paper Section 7).",
     DiagSeverity::Warning},
    {RuleID::HAC003, "possibly-undefined-elements",
     "Some array elements may be left without a definition; the runtime "
     "definedness check stays on (paper Section 4).",
     DiagSeverity::Warning},
    {RuleID::HAC004, "definite-out-of-bounds-write",
     "Every instance of a clause writes outside the declared array "
     "bounds.",
     DiagSeverity::Error},
    {RuleID::HAC005, "out-of-bounds-read",
     "An affine array read's subscript range leaves the array's declared "
     "extents.",
     DiagSeverity::Error},
    {RuleID::HAC006, "dead-clause",
     "A clause can never execute: a surrounding loop has a nonpositive "
     "trip count or a guard is constant false.",
     DiagSeverity::Warning},
    {RuleID::HAC007, "fallback-forced",
     "The program cannot be compiled thunklessly and falls back to the "
     "lazy interpreter; explains why.",
     DiagSeverity::Note},
    {RuleID::HAC008, "loop-not-parallel",
     "A loop stays serial under the parallel planner: a carried "
     "dependence (or poisoned analysis) prevents DOALL and wavefront "
     "execution; the witness explains which.",
     DiagSeverity::Note},
}};

} // namespace

const RuleInfo &hac::ruleInfo(RuleID Id) {
  assert(Id != RuleID::None && "RuleID::None has no metadata");
  return Rules[static_cast<unsigned>(Id) - 1];
}

const std::array<RuleInfo, kNumRules> &hac::allRules() { return Rules; }

RuleID hac::parseRuleName(const std::string &Spelling) {
  if (Spelling.size() != 6)
    return RuleID::None;
  if ((Spelling[0] != 'h' && Spelling[0] != 'H') ||
      (Spelling[1] != 'a' && Spelling[1] != 'A') ||
      (Spelling[2] != 'c' && Spelling[2] != 'C'))
    return RuleID::None;
  unsigned N = 0;
  for (size_t I = 3; I != 6; ++I) {
    if (!std::isdigit(static_cast<unsigned char>(Spelling[I])))
      return RuleID::None;
    N = N * 10 + static_cast<unsigned>(Spelling[I] - '0');
  }
  return ruleIdFromNumber(N);
}
