//===- verify/Rules.h - The HACNNN rule taxonomy ----------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata for the verifier's stable rule taxonomy. Rule IDs are a
/// published contract (DESIGN.md "Static verifier"): an ID, once
/// assigned, keeps its meaning forever and is never reused for a
/// different rule — retired rules leave a hole in the numbering.
///
/// HAC009–HAC011 additionally encode the guilty-until-proven contract of
/// the LIR translation validator (DESIGN.md "LIR verification"): any
/// check an earlier phase dropped as "proven" must be independently
/// re-derivable on the optimized LIR, and any par-flagged loop must have
/// provably disjoint per-iteration write footprints. A fact the validator
/// cannot re-establish is reported as an error under these IDs — the
/// optimization is presumed unsound until the proof goes through.
///
/// The enum itself lives in support/Diagnostics.h so the diagnostic
/// engine can filter findings without depending on this layer; this file
/// adds the name/summary/severity table used by the human report and the
/// SARIF emitter.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_VERIFY_RULES_H
#define HAC_VERIFY_RULES_H

#include "support/Diagnostics.h"

#include <array>

namespace hac {

/// Static metadata for one verifier rule.
struct RuleInfo {
  RuleID Id = RuleID::None;
  /// Stable kebab-case short name, e.g. "non-affine-subscript".
  const char *Name = "";
  /// One-line description (SARIF shortDescription).
  const char *Summary = "";
  /// Severity findings of this rule are reported with by default.
  DiagSeverity DefaultSeverity = DiagSeverity::Warning;
};

/// Metadata for \p Id; \p Id must not be RuleID::None.
const RuleInfo &ruleInfo(RuleID Id);

/// The full table, in rule-number order (HAC001 first).
const std::array<RuleInfo, kNumRules> &allRules();

/// Outcome of parsing a rule spelling: Ok (a known rule), UnknownRule
/// (well-formed "hacNNN" naming no assigned rule — e.g. hac000 or a
/// number past the table), or Malformed (not a rule spelling at all).
enum class RuleParseStatus { Ok, UnknownRule, Malformed };

/// Parses "hacNNN" / "HACNNN" / "HAC001"-style spellings (as used by
/// -Wno-hacNNN): exactly three digits, case-insensitive prefix. Sets
/// \p Out to the rule (RuleID::None unless the status is Ok).
RuleParseStatus parseRuleName(const std::string &Spelling, RuleID &Out);

/// Convenience overload: RuleID::None for anything but a known rule.
RuleID parseRuleName(const std::string &Spelling);

} // namespace hac

#endif // HAC_VERIFY_RULES_H
