//===- verify/Rules.h - The HACNNN rule taxonomy ----------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata for the verifier's stable rule taxonomy. Rule IDs are a
/// published contract (DESIGN.md "Static verifier"): an ID, once
/// assigned, keeps its meaning forever and is never reused for a
/// different rule — retired rules leave a hole in the numbering.
///
/// The enum itself lives in support/Diagnostics.h so the diagnostic
/// engine can filter findings without depending on this layer; this file
/// adds the name/summary/severity table used by the human report and the
/// SARIF emitter.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_VERIFY_RULES_H
#define HAC_VERIFY_RULES_H

#include "support/Diagnostics.h"

#include <array>

namespace hac {

/// Static metadata for one verifier rule.
struct RuleInfo {
  RuleID Id = RuleID::None;
  /// Stable kebab-case short name, e.g. "non-affine-subscript".
  const char *Name = "";
  /// One-line description (SARIF shortDescription).
  const char *Summary = "";
  /// Severity findings of this rule are reported with by default.
  DiagSeverity DefaultSeverity = DiagSeverity::Warning;
};

/// Metadata for \p Id; \p Id must not be RuleID::None.
const RuleInfo &ruleInfo(RuleID Id);

/// The full table, in rule-number order (HAC001 first).
const std::array<RuleInfo, kNumRules> &allRules();

/// Parses "hacNNN" / "HACNNN" / "HAC001"-style spellings (as used by
/// -Wno-hacNNN). Returns RuleID::None when the spelling is not a known
/// rule.
RuleID parseRuleName(const std::string &Spelling);

} // namespace hac

#endif // HAC_VERIFY_RULES_H
