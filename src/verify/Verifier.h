//===- verify/Verifier.h - Source-located comprehension verifier *- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static verifier: converts the pipeline's analysis facts
/// (collision/coverage/read-bounds verdicts, nest structure, fallback
/// state) into source-located diagnostics tagged with the stable HACNNN
/// rule IDs of verify/Rules.h. Findings are reported through a
/// DiagnosticEngine, so per-rule disabling (`-Wno-hacNNN`) and
/// warnings-as-errors apply; witnesses (collision clause pairs, direction
/// vectors, concrete out-of-bounds indices) attach as notes.
///
/// The verifier adds no new whole-program analysis of its own except the
/// dead-clause check (HAC006), which it derives directly from the clause
/// tree so it works for both array constructions and in-place updates.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_VERIFY_VERIFIER_H
#define HAC_VERIFY_VERIFIER_H

#include "core/Compiler.h"
#include "verify/LIRVerifier.h"
#include "verify/Rules.h"

#include <array>
#include <optional>

namespace hac {

/// Per-rule finding counts from one verifier run.
struct VerifyResult {
  /// Hits[N-1] = number of recorded findings for rule HAC00N. Findings
  /// dropped by -Wno-hacNNN are not counted.
  std::array<unsigned, kNumRules> Hits{};

  unsigned hits(RuleID Id) const {
    return Id == RuleID::None ? 0 : Hits[static_cast<unsigned>(Id) - 1];
  }
  unsigned total() const {
    unsigned N = 0;
    for (unsigned H : Hits)
      N += H;
    return N;
  }
};

/// Runs the rule checks over one compiled program and reports findings
/// into a DiagnosticEngine.
class Verifier {
public:
  explicit Verifier(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Enables the LIR verification layer (HAC009–HAC012): translation
  /// validation of dropped checks, static race checking of par-flagged
  /// loops, and second-chance elimination notes, run over the Executor
  /// pipeline replicated at \p Opts.Threads workers. Off by default so
  /// plain Verifier runs keep reporting only the plan-level rules;
  /// `hacc -analyze` turns it on (`-no-verify-lir` opts out).
  void enableLIRVerify(const LIRVerifyOptions &Opts) { LIROptions = Opts; }

  /// Verifies an array construction (also covers accumArray and the
  /// storage-reuse case, which produce CompiledArray).
  VerifyResult verify(const CompiledArray &CA);

  /// Verifies a `bigupd` in-place update. The updated array's extents are
  /// runtime values, so the write/read range rules mostly stay silent;
  /// dead clauses, non-affine subscripts, and fallbacks still fire.
  VerifyResult verify(const CompiledUpdate &CU);

private:
  DiagnosticEngine &Diags;
  VerifyResult Result;
  std::optional<LIRVerifyOptions> LIROptions;

  /// Folds one LIR verification outcome into the per-rule hit counts
  /// and the verify.hacNNN trace counters.
  void foldLIR(const LIRVerifyOutcome &Out);

  /// Reports \p D (tagged with a rule) through the engine; bumps the
  /// per-rule hit count and the `verify.hacNNN` trace counter when the
  /// engine records it.
  void emit(Diagnostic D);

  void checkNonAffineWrites(const CoverageAnalysis &Coverage);
  void checkCollisions(const CollisionAnalysis &Collisions);
  void checkCoverage(const std::string &Name,
                     const CoverageAnalysis &Coverage);
  void checkWriteBounds(const CoverageAnalysis &Coverage);
  void checkReads(const ReadBoundsAnalysis &Reads);
  void checkDeadClauses(const CompNest &Nest, const ParamEnv &Params);
  void checkFallback(bool Compiled, const std::string &Reason);
  /// HAC008: notes every loop the parallel planner left serial, quoting
  /// its blocking witness. Only meaningful on plans the planner has seen
  /// (Thunkless / InPlace); callers skip it otherwise.
  void checkParallel(const ExecPlan &Plan);
  /// HAC013/HAC014: surfaces the dependence graph's precision-audit
  /// evidence — reference pairs where Omega out-proved GCD/Banerjee
  /// (HAC013) and pairs whose Omega query exhausted its step budget
  /// (HAC014, witnessing the constraint system).
  void checkDependencePrecision(const DepGraph &Graph);
};

} // namespace hac

#endif // HAC_VERIFY_VERIFIER_H
