//===- verify/LIRVerifier.cpp - LIR translation validation ----------------===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/LIRVerifier.h"

#include "codegen/ShapeEstimate.h"
#include "support/Trace.h"

using namespace hac;

static LIRVerifyOutcome runPlan(const ExecPlan &Plan, const ArrayDims &Dims,
                                const ParamEnv &Params,
                                DiagnosticEngine &Diags,
                                const LIRVerifyOptions &Opts) {
  LIRVerifyOutcome Out;
  lir::PlanVerifyOptions PO;
  PO.Threads = Opts.Threads;
  PO.SecondChance = Opts.SecondChance;
  PO.InjectKind = Opts.Inject;
  lir::PlanVerifyResult R = lir::verifyPlanLIR(Plan, Dims, Params, PO);
  Out.Ran = true;
  Out.Stats = R.Absint.Stats;
  Out.Eliminated = static_cast<unsigned>(R.Eliminated.size());
  lir::reportLIRFindings(R, Diags, Out.Hits.data());
  HAC_TRACE_COUNT("lir.absint.runs");
  if (Out.Stats.ClaimsProven)
    HAC_TRACE_COUNT("lir.absint.claims_proven",
                    static_cast<int64_t>(Out.Stats.ClaimsProven));
  if (Out.Stats.ClaimsUnproven)
    HAC_TRACE_COUNT("lir.absint.claims_unproven",
                    static_cast<int64_t>(Out.Stats.ClaimsUnproven));
  if (Out.Eliminated)
    HAC_TRACE_COUNT("lir.absint.second_chance",
                    static_cast<int64_t>(Out.Eliminated));
  return Out;
}

LIRVerifyOutcome hac::verifyLIR(const CompiledArray &CA,
                                DiagnosticEngine &Diags,
                                const LIRVerifyOptions &Opts) {
  if (!CA.Thunkless)
    return LIRVerifyOutcome{};
  return runPlan(CA.Plan, CA.Dims, CA.Params, Diags, Opts);
}

LIRVerifyOutcome hac::verifyLIR(const CompiledUpdate &CU,
                                DiagnosticEngine &Diags,
                                const LIRVerifyOptions &Opts) {
  if (!CU.InPlace)
    return LIRVerifyOutcome{};
  ArrayDims Dims;
  if (!estimateUpdateDims(CU.Plan, CU.Params, Dims))
    return LIRVerifyOutcome{}; // no finite shape estimate: nothing to pin
  return runPlan(CU.Plan, Dims, CU.Params, Diags, Opts);
}
