//===- verify/LIRVerifier.h - LIR translation validation --------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-located front end for the LIR abstract interpreter
/// (lir/LIRAbsint.h): replicates the Executor's lowering pipeline over a
/// compiled program's ExecPlan and reports the validator's findings
/// through the DiagnosticEngine under the stable rule IDs HAC009–HAC012.
/// This is the `-verify-lir` layer the Verifier invokes when enabled.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_VERIFY_LIRVERIFIER_H
#define HAC_VERIFY_LIRVERIFIER_H

#include "core/Compiler.h"
#include "lir/LIRAbsint.h"
#include "verify/Rules.h"

#include <array>

namespace hac {

/// Options for one LIR verification run.
struct LIRVerifyOptions {
  /// Worker count of the pipeline being validated: 1 = the serial
  /// Executor pipeline, > 1 enables legalizePar and the race checks.
  unsigned Threads = 1;
  /// Mirror the Executor's second-chance check elimination (HAC012
  /// notes for residual checks it deletes).
  bool SecondChance = true;
  /// Fault injection for the golden corpus (hacc -Xverify-inject=...).
  lir::PlanVerifyOptions::Inject Inject = lir::PlanVerifyOptions::Inject::None;
};

/// What one run did: Ran is false when the program has no plan to verify
/// (fallback compilations, or an update whose shape cannot be estimated).
struct LIRVerifyOutcome {
  bool Ran = false;
  /// Hits[N-1] = recorded findings for rule HAC00N (only HAC009–HAC012
  /// slots are ever nonzero).
  std::array<unsigned, kNumRules> Hits{};
  lir::AbsintStats Stats;
  unsigned Eliminated = 0; ///< second-chance deletions (incl. claims)
};

/// Validates a compiled array construction's plan (requires Thunkless).
LIRVerifyOutcome verifyLIR(const CompiledArray &CA, DiagnosticEngine &Diags,
                           const LIRVerifyOptions &Opts = {});

/// Validates a compiled in-place update's plan (requires InPlace; the
/// target shape is estimated from the plan's subscript ranges and the
/// run is skipped when no finite estimate exists).
LIRVerifyOutcome verifyLIR(const CompiledUpdate &CU, DiagnosticEngine &Diags,
                           const LIRVerifyOptions &Opts = {});

} // namespace hac

#endif // HAC_VERIFY_LIRVERIFIER_H
