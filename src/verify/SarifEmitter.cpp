//===- verify/SarifEmitter.cpp - SARIF 2.1.0 output -----------------------===//

#include "verify/SarifEmitter.h"

#include "support/Trace.h"
#include "verify/Rules.h"

#include <algorithm>
#include <tuple>

using namespace hac;

namespace {

const char *sarifLevel(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "none";
}

void writePhysicalLocation(std::ostream &OS, const std::string &Uri,
                           SourceLoc Loc, const char *Indent) {
  OS << Indent << "\"physicalLocation\": {\n";
  OS << Indent << "  \"artifactLocation\": { \"uri\": " << jsonQuote(Uri)
     << ", \"index\": 0 },\n";
  OS << Indent << "  \"region\": { \"startLine\": " << Loc.Line
     << ", \"startColumn\": " << (Loc.Col ? Loc.Col : 1) << " }\n";
  OS << Indent << "}";
}

void writeResult(std::ostream &OS, const Diagnostic &D,
                 const std::string &Uri) {
  OS << "        {\n";
  if (D.Rule != RuleID::None) {
    OS << "          \"ruleId\": " << jsonQuote(ruleIdString(D.Rule))
       << ",\n";
    OS << "          \"ruleIndex\": "
       << (static_cast<unsigned>(D.Rule) - 1) << ",\n";
  }
  OS << "          \"level\": " << jsonQuote(sarifLevel(D.Severity))
     << ",\n";
  OS << "          \"message\": { \"text\": " << jsonQuote(D.Message)
     << " }";
  if (D.Loc.isValid()) {
    OS << ",\n          \"locations\": [\n            {\n";
    writePhysicalLocation(OS, Uri, D.Loc, "              ");
    OS << "\n            }\n          ]";
  }
  if (!D.Notes.empty()) {
    OS << ",\n          \"relatedLocations\": [";
    for (size_t I = 0; I != D.Notes.size(); ++I) {
      const Diagnostic &N = D.Notes[I];
      OS << (I ? ",\n" : "\n") << "            {\n";
      if (N.Loc.isValid()) {
        writePhysicalLocation(OS, Uri, N.Loc, "              ");
        OS << ",\n";
      }
      OS << "              \"message\": { \"text\": "
         << jsonQuote(N.Message) << " }\n";
      OS << "            }";
    }
    OS << "\n          ]";
  }
  OS << "\n        }";
}

} // namespace

void hac::writeSarif(std::ostream &OS, const DiagnosticEngine &Diags,
                     const std::string &ArtifactUri) {
  OS << "{\n";
  OS << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  OS << "  \"version\": \"2.1.0\",\n";
  OS << "  \"runs\": [\n    {\n";

  OS << "      \"tool\": {\n        \"driver\": {\n";
  OS << "          \"name\": \"hac-verify\",\n";
  OS << "          \"informationUri\": "
        "\"https://dl.acm.org/doi/10.1145/93542.93561\",\n";
  OS << "          \"rules\": [";
  const auto &Rules = allRules();
  for (size_t I = 0; I != Rules.size(); ++I) {
    const RuleInfo &R = Rules[I];
    OS << (I ? ",\n" : "\n") << "            {\n";
    OS << "              \"id\": " << jsonQuote(ruleIdString(R.Id))
       << ",\n";
    OS << "              \"name\": " << jsonQuote(R.Name) << ",\n";
    OS << "              \"shortDescription\": { \"text\": "
       << jsonQuote(R.Summary) << " },\n";
    OS << "              \"defaultConfiguration\": { \"level\": "
       << jsonQuote(sarifLevel(R.DefaultSeverity)) << " }\n";
    OS << "            }";
  }
  OS << "\n          ]\n        }\n      },\n";

  OS << "      \"artifacts\": [\n";
  OS << "        { \"location\": { \"uri\": " << jsonQuote(ArtifactUri)
     << " } }\n";
  OS << "      ],\n";

  // The engine records findings in pipeline order, which shifts whenever
  // a pass is reordered; SARIF consumers (and the golden tests) want a
  // stable document. Sort by location, then rule, severity, and message,
  // and drop exact duplicates — re-running an analysis layer must not
  // inflate the result set.
  const auto &All = Diags.diagnostics();
  std::vector<const Diagnostic *> Results;
  Results.reserve(All.size());
  for (const Diagnostic &D : All)
    Results.push_back(&D);
  auto Key = [](const Diagnostic *D) {
    return std::make_tuple(D->Loc.Line, D->Loc.Col,
                           static_cast<unsigned>(D->Rule),
                           static_cast<unsigned>(D->Severity), D->Message);
  };
  std::stable_sort(Results.begin(), Results.end(),
                   [&](const Diagnostic *A, const Diagnostic *B) {
                     return Key(A) < Key(B);
                   });
  Results.erase(std::unique(Results.begin(), Results.end(),
                            [&](const Diagnostic *A, const Diagnostic *B) {
                              return Key(A) == Key(B);
                            }),
                Results.end());
  OS << "      \"results\": [";
  for (size_t I = 0; I != Results.size(); ++I) {
    OS << (I ? ",\n" : "\n");
    writeResult(OS, *Results[I], ArtifactUri);
  }
  OS << (Results.empty() ? "]\n" : "\n      ]\n");
  OS << "    }\n  ]\n}\n";
}
