//===- support/Diagnostics.h - Diagnostic engine ----------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code reports errors through a
/// DiagnosticEngine instead of printing or aborting, so tools and tests can
/// inspect what went wrong.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_DIAGNOSTICS_H
#define HAC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <ostream>
#include <string>
#include <vector>

namespace hac {

/// Severity of a single diagnostic.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// One reported diagnostic: severity, optional location, message text.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:7: message" (location omitted when unknown).
  std::string str() const;
};

/// Collects diagnostics produced during compilation. The engine never
/// aborts; callers check hasErrors() at phase boundaries.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void warning(std::string Message) {
    warning(SourceLoc(), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Discards all collected diagnostics and resets counters.
  void clear();

  /// Writes every diagnostic, one per line, to \p OS.
  void print(std::ostream &OS) const;

  /// Concatenates all diagnostics into a single newline-separated string.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

const char *severityName(DiagSeverity Severity);

} // namespace hac

#endif // HAC_SUPPORT_DIAGNOSTICS_H
