//===- support/Diagnostics.h - Diagnostic engine ----------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code reports errors through a
/// DiagnosticEngine instead of printing or aborting, so tools and tests can
/// inspect what went wrong.
///
/// Diagnostics may carry a stable verifier rule ID (the HACNNN taxonomy of
/// src/verify/Rules.h — IDs are a published contract and are never reused)
/// and attached notes that print nested under their parent. The engine
/// supports per-rule enable/disable (`-Wno-hacNNN`) and warnings-as-errors
/// (`-Werror`).
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_DIAGNOSTICS_H
#define HAC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hac {

/// Severity of a single diagnostic.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// Stable verifier rule identifiers (see src/verify/Rules.h for the full
/// metadata table). The numeric values are part of the published taxonomy:
/// an ID, once assigned, is never reused for a different rule.
enum class RuleID : uint8_t {
  None = 0,   ///< not a verifier finding
  HAC001 = 1, ///< non-affine-subscript
  HAC002 = 2, ///< possible-write-collision
  HAC003 = 3, ///< possibly-undefined-elements
  HAC004 = 4, ///< definite-out-of-bounds-write
  HAC005 = 5, ///< out-of-bounds-read
  HAC006 = 6, ///< dead-clause
  HAC007 = 7, ///< fallback-forced
  HAC008 = 8, ///< loop-not-parallel
  HAC009 = 9, ///< unsound-check-elimination (LIR translation validation)
  HAC010 = 10, ///< doall-write-overlap (LIR static race check)
  HAC011 = 11, ///< wavefront-cross-front-write (LIR static race check)
  HAC012 = 12, ///< late-proven-check-elimination (LIR second chance)
  HAC013 = 13, ///< conservative-tier-imprecision (Omega precision audit)
  HAC014 = 14, ///< dependence-budget-exhausted (Omega gave up)
};

/// Number of assigned rules (RuleID values 1..kNumRules are valid).
inline constexpr unsigned kNumRules = 14;

/// "HAC001" ... "HAC014", or "" for RuleID::None.
const char *ruleIdString(RuleID Rule);

/// Maps 1..kNumRules to the rule; anything else to RuleID::None.
RuleID ruleIdFromNumber(unsigned N);

/// One reported diagnostic: severity, optional rule, optional location,
/// message text, and notes nested under it.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  RuleID Rule = RuleID::None;
  SourceLoc Loc;
  std::string Message;
  /// Attached notes (witnesses, secondary locations). Notes of notes are
  /// not supported; nested entries are printed flat under the parent.
  std::vector<Diagnostic> Notes;

  /// Renders as "error: 3:7: [HAC004] message" (location and rule tag
  /// omitted when unknown). Notes are not included; see
  /// DiagnosticEngine::print for the nested rendering.
  std::string str() const;
};

/// Builds a note diagnostic (for Diagnostic::Notes).
Diagnostic makeNote(SourceLoc Loc, std::string Message);

/// Collects diagnostics produced during compilation. The engine never
/// aborts; callers check hasErrors() at phase boundaries.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  /// Reports a verifier finding with a rule ID and attached notes.
  /// Disabled rules are dropped silently; with warnings-as-errors set,
  /// warnings are promoted to errors. Returns true when the diagnostic
  /// was recorded.
  bool report(Diagnostic Diag);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void warning(std::string Message) {
    warning(SourceLoc(), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  /// When set, subsequent warnings are recorded (and counted) as errors.
  void setWarningsAsErrors(bool V) { WarningsAsErrors = V; }
  bool warningsAsErrors() const { return WarningsAsErrors; }

  /// Per-rule enable/disable (`-Wno-hacNNN`). Disabling a rule makes
  /// report() drop findings tagged with it. All rules start enabled.
  void setRuleEnabled(RuleID Rule, bool Enabled);
  bool isRuleEnabled(RuleID Rule) const;

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Discards all collected diagnostics and resets counters (the
  /// warnings-as-errors and per-rule flags are unchanged).
  void clear();

  /// Writes every diagnostic to \p OS sorted by source location
  /// (location-less diagnostics first, then line/column order; ties keep
  /// report order), with notes nested under their parent.
  void print(std::ostream &OS) const;

  /// Concatenates the print() rendering into a single string.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
  bool WarningsAsErrors = false;
  /// Bit N set = rule N disabled (bit 0 unused).
  uint32_t DisabledRules = 0;
};

const char *severityName(DiagSeverity Severity);

} // namespace hac

#endif // HAC_SUPPORT_DIAGNOSTICS_H
