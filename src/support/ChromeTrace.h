//===- support/ChromeTrace.h - Chrome trace-event timelines -----*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timeline exporter in the Chrome trace-event JSON format, loadable
/// in chrome://tracing and Perfetto (ui.perfetto.dev). Spans are
/// recorded as complete intervals (begin/end nanoseconds on a process
/// clock) tagged with a thread id, so the parallel runtime's DOALL
/// chunks and wavefront fronts render as per-worker lanes.
///
/// Same life cycle as TraceSink: process-global, disabled by default,
/// one inline branch on the fast path when disabled. The evaluator and
/// pool emit spans only when timelineEnabled(), so a run without
/// `-timeline` pays nothing beyond that branch.
///
/// Thread ids are lane numbers, not OS tids: tid 0 is the calling
/// thread (pool worker 0), tids 1..N-1 the pool workers, and tid 100 is
/// a synthetic "pipeline" lane holding spans imported from TraceSink
/// (parse/compile/execute phase timers).
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_CHROMETRACE_H
#define HAC_SUPPORT_CHROMETRACE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hac {

/// One complete span on the timeline, in nanoseconds since the sink's
/// epoch (its construction time).
struct TimelineSpan {
  std::string Name;
  std::string Cat;  ///< trace-event category ("phase", "doall", "wave", ...)
  std::string Args; ///< pre-rendered JSON object body ("" for none)
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  uint32_t Tid = 0; ///< lane number (see file comment)
};

/// The process-global timeline sink.
class ChromeTraceSink {
public:
  /// The singleton. First access seeds the enabled flag from the
  /// HAC_TIMELINE environment variable and pins the epoch.
  static ChromeTraceSink &get();

  bool enabled() const { return Enabled; }
  void setEnabled(bool E) { Enabled = E; }

  /// Nanoseconds since the sink's epoch, for bracketing spans.
  uint64_t nowNs() const;

  /// Records one complete span. \p Args, when nonempty, must be the
  /// body of a JSON object without braces (e.g. "\"chunk\": 3").
  void completeSpan(std::string_view Name, std::string_view Cat,
                    uint64_t BeginNs, uint64_t EndNs, uint32_t Tid,
                    std::string Args = "");

  /// Names a lane ("worker 1", "pipeline"). Unnamed lanes get a
  /// default name when the timeline is written.
  void threadName(uint32_t Tid, std::string_view Name);

  /// Converts TraceSink's closed phase spans into spans on the
  /// synthetic pipeline lane (tid 100). Spans that began before this
  /// sink's epoch are clamped to 0. Call once, before writeJson.
  void importTraceSink();

  /// Drops all spans and lane names (the enabled flag is unchanged).
  void clear();

  bool empty() const;

  /// Copy-out under the mutex.
  std::vector<TimelineSpan> spansSnapshot() const;

  /// Writes {"traceEvents": [...]} — each span expanded to a "B"/"E"
  /// pair, preceded by "M" thread_name metadata, sorted so the file is
  /// a valid nesting per lane (see ChromeTrace.cpp for the exact
  /// order). Timestamps are microseconds with three decimals.
  void writeJson(std::ostream &OS) const;

  /// The synthetic lane holding spans imported from TraceSink.
  static constexpr uint32_t PipelineTid = 100;

private:
  ChromeTraceSink();

  mutable std::mutex Mutex;
  bool Enabled = false;
  std::chrono::steady_clock::time_point Epoch;
  std::vector<TimelineSpan> Spans;
  std::map<uint32_t, std::string> LaneNames;
};

/// True when the global timeline sink is recording.
inline bool timelineEnabled() { return ChromeTraceSink::get().enabled(); }

} // namespace hac

#endif // HAC_SUPPORT_CHROMETRACE_H
