//===- support/Casting.h - isa/cast/dyn_cast templates ---------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style kind-based RTTI. Classes participate by providing a
/// static `bool classof(const Base *)` predicate; the library never uses
/// C++ RTTI or exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_CASTING_H
#define HAC_SUPPORT_CASTING_H

#include <cassert>

namespace hac {

/// Returns true if \p Val is an instance of To. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && To::classof(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return isa_and_present<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return isa_and_present<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace hac

#endif // HAC_SUPPORT_CASTING_H
