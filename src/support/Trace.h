//===- support/Trace.h - Pipeline tracing & structured metrics --*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability subsystem: hierarchical phase timers (RAII scoped
/// spans over std::chrono::steady_clock), named monotonic counters, and a
/// structured event sink that renders as either a human-readable tree or
/// JSON.
///
/// The sink is process-global and disabled by default. When disabled the
/// fast path is a single inline branch on one bool — no allocation, no
/// clock read — so instrumentation stays wired in permanently. Defining
/// HAC_TRACE_DISABLED at build time removes even that branch (the
/// HAC_TRACE_SPAN/HAC_TRACE_COUNT macros expand to nothing).
///
/// Span names form a stable taxonomy (see DESIGN.md "Observability"):
/// benches and the hac_trace_smoke test key on them, so renaming a phase
/// is an interface change.
///
/// Setting the HAC_TRACE environment variable enables tracing in any
/// binary without flag plumbing; at process exit the span tree and
/// counters are dumped to stderr (HAC_TRACE=json dumps JSON instead).
///
/// Counters and spans are thread-safe: a mutex guards every mutation, so
/// parallel-runtime workers may bump counters concurrently. The span
/// *tree* is still logically single-threaded (spans close in LIFO order
/// on the thread that opened them); workers should stick to count().
/// Readers use eventsSnapshot()/countersSnapshot(), which copy out under
/// the mutex and are therefore safe at any time, even mid-run.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_TRACE_H
#define HAC_SUPPORT_TRACE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hac {

/// One completed (or still-open) span in the phase tree.
struct TraceEvent {
  std::string Name;
  /// Free-form detail attached via TraceSink::annotate ("" when none).
  std::string Detail;
  /// Index of the parent event, or -1 for roots.
  int Parent = -1;
  /// Nesting depth (roots are 0).
  unsigned Depth = 0;
  std::chrono::steady_clock::time_point Start;
  /// Wall-clock duration; valid once the span has ended.
  std::chrono::nanoseconds Duration{0};
  bool Closed = false;

  double millis() const {
    return std::chrono::duration<double, std::milli>(Duration).count();
  }
};

/// The process-global event sink. Spans append TraceEvents in start
/// order (a pre-order walk of the phase tree); counters accumulate
/// monotonically until clear().
class TraceSink {
public:
  /// The singleton. First access seeds the enabled flag from the
  /// HAC_TRACE environment variable.
  static TraceSink &get();

  bool enabled() const { return Enabled; }
  void setEnabled(bool E) { Enabled = E; }

  /// Drops all events and counters (the enabled flag is unchanged).
  void clear();

  /// Starts a span and returns its event index. endSpan must be called
  /// with the same index, in LIFO order (TraceSpan guarantees this).
  int beginSpan(std::string_view Name);
  void endSpan(int Index);

  /// Attaches free-form detail to the innermost open span (no-op when
  /// disabled or no span is open).
  void annotate(std::string_view Detail);

  /// Adds \p Delta to the named monotonic counter.
  void count(std::string_view Name, uint64_t Delta = 1);

  /// Raises the named counter to \p Value if it is below it (for
  /// high-water marks like peak temporary bytes).
  void countMax(std::string_view Name, uint64_t Value);

  /// Copy-out under the mutex; safe while worker threads are running.
  std::vector<TraceEvent> eventsSnapshot() const;
  std::map<std::string, uint64_t> countersSnapshot() const;
  uint64_t counter(std::string_view Name) const;

  /// Renders the span tree and counters as indented human-readable text.
  void printTree(std::ostream &OS) const;

  /// Writes {"phases": [...], "counters": {...}} — a JSON object callers
  /// embed in larger telemetry documents.
  void writeJson(std::ostream &OS, unsigned Indent = 0) const;

private:
  TraceSink();

  /// Guards Events/Counters/OpenStack against concurrent mutation from
  /// parallel-runtime worker threads.
  mutable std::mutex Mutex;
  bool Enabled = false;
  std::vector<TraceEvent> Events;
  std::map<std::string, uint64_t> Counters;
  /// Indices of currently open spans, innermost last.
  std::vector<int> OpenStack;

  static void writeEventJson(std::ostream &OS,
                             const std::vector<TraceEvent> &Evs, size_t Index,
                             unsigned Indent);
};

/// RAII scoped span. Constructing when tracing is disabled costs one
/// branch; no allocation, no clock read.
class TraceSpan {
public:
  explicit TraceSpan(std::string_view Name) {
    TraceSink &S = TraceSink::get();
    if (S.enabled())
      Index = S.beginSpan(Name);
  }
  ~TraceSpan() {
    if (Index >= 0)
      TraceSink::get().endSpan(Index);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  int Index = -1;
};

/// True when the global sink is recording. Use to guard non-trivial
/// instrumentation (string building, stat folding).
inline bool traceEnabled() { return TraceSink::get().enabled(); }

/// Increments a named counter (one branch when disabled).
inline void traceCount(std::string_view Name, uint64_t Delta = 1) {
  TraceSink &S = TraceSink::get();
  if (S.enabled())
    S.count(Name, Delta);
}

/// Escapes and double-quotes \p S for JSON output.
std::string jsonQuote(std::string_view S);

#ifdef HAC_TRACE_DISABLED
#define HAC_TRACE_SPAN(Var, Name)
#define HAC_TRACE_COUNT(...)
#else
/// Declares an RAII span covering the rest of the enclosing scope.
#define HAC_TRACE_SPAN(Var, Name) ::hac::TraceSpan Var(Name)
#define HAC_TRACE_COUNT(...) ::hac::traceCount(__VA_ARGS__)
#endif

} // namespace hac

#endif // HAC_SUPPORT_TRACE_H
