//===- support/Trace.cpp - Pipeline tracing & structured metrics ----------===//

#include "support/Trace.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

using namespace hac;

std::string hac::jsonQuote(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
  return Out;
}

namespace {

/// atexit hook for HAC_TRACE: dump whatever was recorded to stderr.
bool DumpJsonAtExit = false;

void dumpAtExit() {
  TraceSink &S = TraceSink::get();
  if (S.eventsSnapshot().empty() && S.countersSnapshot().empty())
    return;
  if (DumpJsonAtExit) {
    S.writeJson(std::cerr);
    std::cerr << "\n";
  } else {
    std::cerr << "=== HAC_TRACE ===\n";
    S.printTree(std::cerr);
  }
}

} // namespace

TraceSink::TraceSink() {
  if (const char *Env = std::getenv("HAC_TRACE")) {
    if (*Env && std::strcmp(Env, "0") != 0) {
      Enabled = true;
      DumpJsonAtExit = std::strcmp(Env, "json") == 0;
      std::atexit(dumpAtExit);
    }
  }
}

TraceSink &TraceSink::get() {
  // Intentionally leaked: the constructor may register an atexit dump
  // (HAC_TRACE), which must outlive static destruction. atexit handlers
  // and static destructors share one LIFO list, and a handler registered
  // inside the constructor runs *after* the object's own destructor —
  // so a function-local static would be dead by the time it fires.
  static TraceSink *Instance = new TraceSink;
  return *Instance;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
  Counters.clear();
  OpenStack.clear();
}

int TraceSink::beginSpan(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  TraceEvent E;
  E.Name = std::string(Name);
  E.Parent = OpenStack.empty() ? -1 : OpenStack.back();
  E.Depth = static_cast<unsigned>(OpenStack.size());
  E.Start = std::chrono::steady_clock::now();
  int Index = static_cast<int>(Events.size());
  Events.push_back(std::move(E));
  OpenStack.push_back(Index);
  return Index;
}

void TraceSink::endSpan(int Index) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Index >= 0 && static_cast<size_t>(Index) < Events.size() &&
         "endSpan of an unknown span");
  assert(!OpenStack.empty() && OpenStack.back() == Index &&
         "spans must close in LIFO order");
  TraceEvent &E = Events[Index];
  E.Duration = std::chrono::steady_clock::now() - E.Start;
  E.Closed = true;
  OpenStack.pop_back();
}

void TraceSink::annotate(std::string_view Detail) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Enabled || OpenStack.empty())
    return;
  TraceEvent &E = Events[OpenStack.back()];
  if (!E.Detail.empty())
    E.Detail += "; ";
  E.Detail += std::string(Detail);
}

void TraceSink::count(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Transparent comparison keeps repeat increments allocation-free.
  auto It = Counters.find(std::string(Name));
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

void TraceSink::countMax(std::string_view Name, uint64_t Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t &Slot = Counters[std::string(Name)];
  if (Value > Slot)
    Slot = Value;
}

uint64_t TraceSink::counter(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(std::string(Name));
  return It == Counters.end() ? 0 : It->second;
}

std::vector<TraceEvent> TraceSink::eventsSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events;
}

std::map<std::string, uint64_t> TraceSink::countersSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

void TraceSink::printTree(std::ostream &OS) const {
  std::vector<TraceEvent> Evs = eventsSnapshot();
  std::map<std::string, uint64_t> Ctrs = countersSnapshot();
  for (const TraceEvent &E : Evs) {
    for (unsigned I = 0; I != E.Depth; ++I)
      OS << "  ";
    OS << E.Name;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", E.millis());
    OS << "  " << Buf << " ms";
    if (!E.Closed)
      OS << " (open)";
    if (!E.Detail.empty())
      OS << "  [" << E.Detail << "]";
    OS << "\n";
  }
  if (!Ctrs.empty()) {
    OS << "counters:\n";
    for (const auto &[Name, Value] : Ctrs)
      OS << "  " << Name << " = " << Value << "\n";
  }
}

void TraceSink::writeEventJson(std::ostream &OS,
                               const std::vector<TraceEvent> &Evs,
                               size_t Index, unsigned Indent) {
  const TraceEvent &E = Evs[Index];
  std::string Pad(Indent, ' ');
  OS << Pad << "{\"name\": " << jsonQuote(E.Name) << ", \"ms\": ";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", E.millis());
  OS << Buf;
  if (!E.Detail.empty())
    OS << ", \"detail\": " << jsonQuote(E.Detail);
  // Children are the later events whose Parent is this index.
  std::vector<size_t> Children;
  for (size_t I = Index + 1; I != Evs.size(); ++I)
    if (Evs[I].Parent == static_cast<int>(Index))
      Children.push_back(I);
  if (!Children.empty()) {
    OS << ", \"children\": [\n";
    for (size_t I = 0; I != Children.size(); ++I) {
      writeEventJson(OS, Evs, Children[I], Indent + 2);
      OS << (I + 1 == Children.size() ? "\n" : ",\n");
    }
    OS << Pad << "]";
  }
  OS << "}";
}

void TraceSink::writeJson(std::ostream &OS, unsigned Indent) const {
  std::vector<TraceEvent> Evs = eventsSnapshot();
  std::map<std::string, uint64_t> Ctrs = countersSnapshot();
  std::string Pad(Indent, ' ');
  OS << Pad << "{\n" << Pad << " \"phases\": [\n";
  std::vector<size_t> Roots;
  for (size_t I = 0; I != Evs.size(); ++I)
    if (Evs[I].Parent < 0)
      Roots.push_back(I);
  for (size_t I = 0; I != Roots.size(); ++I) {
    writeEventJson(OS, Evs, Roots[I], Indent + 2);
    OS << (I + 1 == Roots.size() ? "\n" : ",\n");
  }
  OS << Pad << " ],\n" << Pad << " \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Ctrs) {
    OS << (First ? "\n" : ",\n") << Pad << "  " << jsonQuote(Name) << ": "
       << Value;
    First = false;
  }
  if (!First)
    OS << "\n" << Pad << " ";
  OS << "}\n" << Pad << "}";
}
