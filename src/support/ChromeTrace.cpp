//===- support/ChromeTrace.cpp - Chrome trace-event timelines -------------===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ChromeTrace.h"
#include "Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace hac;

ChromeTraceSink::ChromeTraceSink()
    : Epoch(std::chrono::steady_clock::now()) {
  if (const char *Env = std::getenv("HAC_TIMELINE")) {
    if (*Env && std::strcmp(Env, "0") != 0)
      Enabled = true;
  }
}

ChromeTraceSink &ChromeTraceSink::get() {
  // Leaked for the same reason as TraceSink: callers may write the
  // timeline from atexit handlers.
  static ChromeTraceSink *Instance = new ChromeTraceSink;
  return *Instance;
}

uint64_t ChromeTraceSink::nowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - Epoch)
                                   .count());
}

void ChromeTraceSink::completeSpan(std::string_view Name, std::string_view Cat,
                                   uint64_t BeginNs, uint64_t EndNs,
                                   uint32_t Tid, std::string Args) {
  TimelineSpan S;
  S.Name = std::string(Name);
  S.Cat = std::string(Cat);
  S.Args = std::move(Args);
  S.BeginNs = BeginNs;
  S.EndNs = EndNs < BeginNs ? BeginNs : EndNs;
  S.Tid = Tid;
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(std::move(S));
}

void ChromeTraceSink::threadName(uint32_t Tid, std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  LaneNames[Tid] = std::string(Name);
}

void ChromeTraceSink::importTraceSink() {
  TraceSink &TS = TraceSink::get();
  std::vector<TraceEvent> Events = TS.eventsSnapshot();
  for (const TraceEvent &E : Events) {
    if (!E.Closed)
      continue;
    // TraceSink stamps absolute steady_clock points; rebase onto this
    // sink's epoch. TraceSink may have recorded spans before the first
    // ChromeTraceSink::get() pinned the epoch — clamp those to 0 so the
    // timeline never goes negative.
    auto Rel = E.Start - Epoch;
    int64_t BeginSigned =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Rel).count();
    uint64_t Begin = BeginSigned < 0 ? 0 : static_cast<uint64_t>(BeginSigned);
    uint64_t End = Begin + static_cast<uint64_t>(E.Duration.count());
    std::string Args;
    if (!E.Detail.empty())
      Args = "\"detail\": " + jsonQuote(E.Detail);
    completeSpan(E.Name, "phase", Begin, End, PipelineTid, std::move(Args));
  }
  threadName(PipelineTid, "pipeline");
}

void ChromeTraceSink::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.clear();
  LaneNames.clear();
}

bool ChromeTraceSink::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans.empty();
}

std::vector<TimelineSpan> ChromeTraceSink::spansSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans;
}

namespace {

/// One B or E record awaiting emission.
struct Rec {
  uint64_t Ns;      ///< event timestamp
  uint64_t PairNs;  ///< the matching end (for B) / begin (for E) timestamp
  bool IsEnd;
  const TimelineSpan *Span;
};

/// Chrome requires each lane's events to form a valid bracket nesting
/// when read in file order. Sorting by timestamp alone is not enough at
/// ties, so: (1) ascending integer-nanosecond ts; (2) at equal ts, "E"
/// before "B" (close the old span before opening an adjacent one);
/// (3) among "B"s, longer span first (outer opens before inner);
/// (4) among "E"s, later-started span first (inner closes before outer).
bool recLess(const Rec &A, const Rec &B) {
  if (A.Ns != B.Ns)
    return A.Ns < B.Ns;
  if (A.IsEnd != B.IsEnd)
    return A.IsEnd;
  // Both orderings reduce to descending pair timestamp: among "B"s the
  // larger end (longer span) opens first, among "E"s the larger begin
  // (later-started, i.e. inner span) closes first.
  return A.PairNs > B.PairNs;
}

void writeTs(std::ostream &OS, uint64_t Ns) {
  // Microseconds with three decimals keeps full nanosecond precision.
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
  OS << Buf;
}

} // namespace

void ChromeTraceSink::writeJson(std::ostream &OS) const {
  std::vector<TimelineSpan> Snap = spansSnapshot();
  std::map<uint32_t, std::string> Lanes;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Lanes = LaneNames;
  }
  for (const TimelineSpan &S : Snap)
    if (!Lanes.count(S.Tid))
      Lanes[S.Tid] = "worker " + std::to_string(S.Tid);

  std::vector<Rec> Recs;
  Recs.reserve(Snap.size() * 2);
  for (const TimelineSpan &S : Snap) {
    Recs.push_back({S.BeginNs, S.EndNs, false, &S});
    Recs.push_back({S.EndNs, S.BeginNs, true, &S});
  }
  std::stable_sort(Recs.begin(), Recs.end(), recLess);

  OS << "{\"traceEvents\": [";
  bool First = true;
  auto Sep = [&] {
    OS << (First ? "\n" : ",\n");
    First = false;
  };
  for (const auto &[Tid, Name] : Lanes) {
    Sep();
    OS << " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << Tid << ", \"args\": {\"name\": " << jsonQuote(Name) << "}}";
  }
  for (const Rec &R : Recs) {
    const TimelineSpan &S = *R.Span;
    Sep();
    OS << " {\"name\": " << jsonQuote(S.Name)
       << ", \"cat\": " << jsonQuote(S.Cat) << ", \"ph\": \""
       << (R.IsEnd ? 'E' : 'B') << "\", \"pid\": 1, \"tid\": " << S.Tid
       << ", \"ts\": ";
    writeTs(OS, R.Ns);
    if (!R.IsEnd && !S.Args.empty())
      OS << ", \"args\": {" << S.Args << "}";
    OS << "}";
  }
  OS << (First ? "]}" : "\n]}");
  OS << "\n";
}
