//===- support/IntMath.h - Integer number theory helpers -------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Number-theoretic helpers used by the subscript analysis: gcd, extended
/// gcd, the positive/negative part operators t+ and t- from the Banerjee
/// inequality development (Section 6 of the paper), and saturating
/// arithmetic so that bound computations on adversarial inputs cannot
/// silently overflow.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_INTMATH_H
#define HAC_SUPPORT_INTMATH_H

#include <cstdint>

namespace hac {

/// Greatest common divisor of |A| and |B|; gcd(0, 0) == 0 by convention.
int64_t gcd64(int64_t A, int64_t B);

/// Result of the extended Euclidean algorithm: G = gcd(|A|,|B|) and
/// Bezout coefficients with A*X + B*Y == G.
struct ExtGcdResult {
  int64_t G;
  int64_t X;
  int64_t Y;
};

/// Extended Euclidean algorithm. For A == B == 0 returns {0, 0, 0}.
ExtGcdResult extGcd64(int64_t A, int64_t B);

/// The "positive part" t+ of the paper: t if t >= 0, else 0.
inline int64_t posPart(int64_t T) { return T >= 0 ? T : 0; }

/// The "negative part" t- of the paper: -t if t <= 0, else 0.
/// Note t == t+ - t- and |t| == t+ + t-.
inline int64_t negPart(int64_t T) { return T <= 0 ? -T : 0; }

/// Saturating addition on int64 (clamps to the representable range).
int64_t satAdd(int64_t A, int64_t B);

/// Saturating subtraction on int64.
int64_t satSub(int64_t A, int64_t B);

/// Saturating multiplication on int64.
int64_t satMul(int64_t A, int64_t B);

/// Floor division (rounds toward negative infinity). B must be nonzero.
int64_t floorDiv(int64_t A, int64_t B);

/// Ceiling division (rounds toward positive infinity). B must be nonzero.
int64_t ceilDiv(int64_t A, int64_t B);

} // namespace hac

#endif // HAC_SUPPORT_INTMATH_H
