//===- support/Rational.cpp - Exact rational arithmetic -------------------===//

#include "support/Rational.h"

#include "support/IntMath.h"

#include <cassert>

using namespace hac;

Rational::Rational(int64_t Num, int64_t Den) : Num(Num), Den(Den) {
  assert(Den != 0 && "rational with zero denominator");
  if (this->Den < 0) {
    this->Num = -this->Num;
    this->Den = -this->Den;
  }
  int64_t G = gcd64(this->Num, this->Den);
  if (G > 1) {
    this->Num /= G;
    this->Den /= G;
  }
}

int64_t Rational::floor() const { return floorDiv(Num, Den); }

int64_t Rational::ceil() const { return ceilDiv(Num, Den); }

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "rational division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

bool Rational::operator<(const Rational &RHS) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return Num * RHS.Den < RHS.Num * Den;
}

bool Rational::operator<=(const Rational &RHS) const {
  return Num * RHS.Den <= RHS.Num * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
