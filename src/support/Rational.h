//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over int64, used by the bounded *rational*
/// solution machinery behind the Banerjee test (Theorem 2 in Section 6)
/// and by the exact dependence test's elimination steps.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_RATIONAL_H
#define HAC_SUPPORT_RATIONAL_H

#include <cstdint>
#include <string>

namespace hac {

/// An exact rational Num/Den with Den > 0, always kept in lowest terms.
/// Arithmetic asserts on overflow-free operation in debug builds; the
/// analysis only ever manipulates small coefficients and loop bounds.
class Rational {
public:
  Rational() = default;
  /*implicit*/ Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Num, int64_t Den);

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isInteger() const { return Den == 1; }
  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }

  /// Rounds toward negative infinity.
  int64_t floor() const;
  /// Rounds toward positive infinity.
  int64_t ceil() const;

  Rational operator-() const { return Rational(-Num, Den); }
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// RHS must be nonzero.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const;
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return RHS <= *this; }

  /// Renders as "n" when integral, else "n/d".
  std::string str() const;

private:
  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace hac

#endif // HAC_SUPPORT_RATIONAL_H
