//===- support/Profile.h - Source-attributed execution profiles -*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-profile sink: per-loop runtime totals (trip counts,
/// dispatched LIR instructions, executed runtime checks, inclusive wall
/// time) attributed back to the originating comprehension clause's
/// source location, plus thread-pool utilization telemetry.
///
/// Like TraceSink, the sink is process-global and disabled by default;
/// the disabled fast path is a single inline branch on one bool, so the
/// Executor's instrumentation stays wired in permanently. Setting the
/// HAC_PROFILE environment variable enables profiling in any binary and
/// dumps the hot-loop table to stderr at process exit.
///
/// The sink stores plain data only — it knows nothing about the LIR.
/// The Executor converts LIRProgram::Loops plus the evaluator's
/// EvalProfile into one ProgramProfile per run and records it here;
/// `hacc -profile` renders the merged result.
///
/// Counter semantics (the stable part of the interface, pinned by
/// profile_test): Entries/Trips/Instrs/Checks on a successful run are
/// bit-identical across thread counts for the same lowered program —
/// parallel loops are charged analytically with their serial-equivalent
/// instruction counts. Nanos is wall time and naturally varies.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_PROFILE_H
#define HAC_SUPPORT_PROFILE_H

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace hac {

/// One loop's accumulated execution totals, with source attribution.
struct ProfiledLoop {
  /// The comprehension generator variable, or "<fold>" / "<snapshot>"
  /// for compiler-synthesized loops.
  std::string Var;
  /// Source location of the originating clause (1-based; 0 = unknown).
  uint32_t Line = 0;
  uint32_t Col = 0;
  /// Static nesting depth (outermost loops are 0).
  uint32_t Depth = 0;
  /// Index of the enclosing loop within the same ProgramProfile::Loops,
  /// or -1 for top-level loops.
  int32_t Parent = -1;
  /// The par class the loop actually executed as ("serial", "doall",
  /// "wave-outer", "wave-inner").
  std::string ParClass = "serial";
  /// HAC008 witness explaining why the planner kept the loop serial
  /// ("" when parallel or never examined).
  std::string Witness;

  uint64_t Entries = 0; ///< times the loop was entered with >= 1 trip
  uint64_t Trips = 0;   ///< iterations executed
  uint64_t Instrs = 0;  ///< LIR instructions dispatched (inclusive)
  uint64_t Checks = 0;  ///< runtime check instructions executed (inclusive)
  uint64_t Nanos = 0;   ///< inclusive wall time
};

/// Everything profiled about one compiled program (target array),
/// accumulated across runs.
struct ProgramProfile {
  std::string Name; ///< the target array name
  /// The execution tier that ran: "interp" (the LIR evaluator) or
  /// "native" (a JIT-compiled kernel). Part of the merge key, so a plan
  /// that hot-swaps tiers mid-stream reports one row per tier.
  std::string Tier = "interp";
  uint64_t Runs = 0;
  uint64_t RootInstrs = 0; ///< whole-program dispatched instructions
  uint64_t RootChecks = 0;
  uint64_t RootNanos = 0; ///< whole-program wall time inside evalLIR
  std::vector<ProfiledLoop> Loops;
};

/// Thread-pool utilization telemetry (accumulated deltas).
struct PoolUtilization {
  uint64_t Jobs = 0;          ///< parallelFor barriers executed
  uint64_t MaxQueueDepth = 0; ///< high-water mark of any worker deque
  struct Worker {
    uint64_t Tasks = 0;     ///< tasks this worker executed
    uint64_t Steals = 0;    ///< tasks it stole from another deque
    uint64_t IdleNanos = 0; ///< time spent blocked waiting for work
  };
  std::vector<Worker> Workers;
};

/// The process-global profile sink.
class ProfileSink {
public:
  /// The singleton. First access seeds the enabled flag from the
  /// HAC_PROFILE environment variable.
  static ProfileSink &get();

  bool enabled() const { return Enabled; }
  void setEnabled(bool E) { Enabled = E; }

  /// Drops all recorded profiles (the enabled flag is unchanged).
  void clear();

  /// True when nothing has been recorded.
  bool empty() const;

  /// Merges one run's profile. Programs are keyed on (Name, loop
  /// structure): a re-run of the same lowered program accumulates into
  /// the existing entry, anything else appends a new one.
  void record(const ProgramProfile &P);

  /// Merges one run's pool-stat deltas (element-wise by worker index).
  void recordPool(const PoolUtilization &U);

  /// Copy-out under the mutex (safe while workers run).
  std::vector<ProgramProfile> programsSnapshot() const;
  PoolUtilization poolSnapshot() const;

  /// Renders the ranked hot-loop table (inclusive wall time, descending)
  /// with source locations, par classes, and HAC008 witnesses for
  /// serial loops, followed by the pool utilization summary.
  void printTable(std::ostream &OS) const;

  /// Writes {"programs": [...], "pool": {...}} — a JSON object callers
  /// embed in larger telemetry documents.
  void writeJson(std::ostream &OS, unsigned Indent = 0) const;

private:
  ProfileSink();

  mutable std::mutex Mutex;
  bool Enabled = false;
  std::vector<ProgramProfile> Programs;
  PoolUtilization Pool;
};

/// True when the global profile sink is recording. Use to guard
/// non-trivial instrumentation (profile assembly, stat folding).
inline bool profileEnabled() { return ProfileSink::get().enabled(); }

} // namespace hac

#endif // HAC_SUPPORT_PROFILE_H
