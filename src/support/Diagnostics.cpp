//===- support/Diagnostics.cpp - Diagnostic engine ------------------------===//

#include "support/Diagnostics.h"

#include <algorithm>
#include <numeric>
#include <sstream>

using namespace hac;

const char *hac::severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

const char *hac::ruleIdString(RuleID Rule) {
  switch (Rule) {
  case RuleID::None:
    return "";
  case RuleID::HAC001:
    return "HAC001";
  case RuleID::HAC002:
    return "HAC002";
  case RuleID::HAC003:
    return "HAC003";
  case RuleID::HAC004:
    return "HAC004";
  case RuleID::HAC005:
    return "HAC005";
  case RuleID::HAC006:
    return "HAC006";
  case RuleID::HAC007:
    return "HAC007";
  case RuleID::HAC008:
    return "HAC008";
  case RuleID::HAC009:
    return "HAC009";
  case RuleID::HAC010:
    return "HAC010";
  case RuleID::HAC011:
    return "HAC011";
  case RuleID::HAC012:
    return "HAC012";
  case RuleID::HAC013:
    return "HAC013";
  case RuleID::HAC014:
    return "HAC014";
  }
  return "";
}

RuleID hac::ruleIdFromNumber(unsigned N) {
  if (N >= 1 && N <= kNumRules)
    return static_cast<RuleID>(N);
  return RuleID::None;
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << severityName(Severity) << ": ";
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  if (Rule != RuleID::None)
    OS << "[" << ruleIdString(Rule) << "] ";
  OS << Message;
  return OS.str();
}

Diagnostic hac::makeNote(SourceLoc Loc, std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Note;
  D.Loc = Loc;
  D.Message = std::move(Message);
  return D;
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  Diagnostic D;
  D.Severity = Severity;
  D.Loc = Loc;
  D.Message = std::move(Message);
  report(std::move(D));
}

bool DiagnosticEngine::report(Diagnostic Diag) {
  if (!isRuleEnabled(Diag.Rule))
    return false;
  if (WarningsAsErrors && Diag.Severity == DiagSeverity::Warning)
    Diag.Severity = DiagSeverity::Error;
  if (Diag.Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Diag.Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back(std::move(Diag));
  return true;
}

void DiagnosticEngine::setRuleEnabled(RuleID Rule, bool Enabled) {
  if (Rule == RuleID::None)
    return;
  uint32_t Bit = 1u << static_cast<unsigned>(Rule);
  if (Enabled)
    DisabledRules &= ~Bit;
  else
    DisabledRules |= Bit;
}

bool DiagnosticEngine::isRuleEnabled(RuleID Rule) const {
  if (Rule == RuleID::None)
    return true;
  return !(DisabledRules & (1u << static_cast<unsigned>(Rule)));
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

void DiagnosticEngine::print(std::ostream &OS) const {
  // Stable sort by location: global (location-less) diagnostics first,
  // then source order; ties preserve report order.
  std::vector<size_t> Order(Diags.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Diags[A].Loc < Diags[B].Loc;
  });
  for (size_t I : Order) {
    const Diagnostic &D = Diags[I];
    OS << D.str() << '\n';
    for (const Diagnostic &N : D.Notes)
      OS << "  " << N.str() << '\n';
  }
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
