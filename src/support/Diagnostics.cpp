//===- support/Diagnostics.cpp - Diagnostic engine ------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace hac;

const char *hac::severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << severityName(Severity) << ": ";
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  OS << Message;
  return OS.str();
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.str() << '\n';
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
