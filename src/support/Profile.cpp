//===- support/Profile.cpp - Source-attributed execution profiles ---------===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//

#include "Profile.h"
#include "Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace hac {

ProfileSink::ProfileSink() {
  if (const char *Env = std::getenv("HAC_PROFILE")) {
    if (Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0')) {
      Enabled = true;
      std::atexit(+[] {
        ProfileSink &S = ProfileSink::get();
        if (S.enabled() && !S.empty())
          S.printTable(std::cerr);
      });
    }
  }
}

ProfileSink &ProfileSink::get() {
  // Leaked: the atexit dump must outlive static destructors in other TUs.
  static ProfileSink *S = new ProfileSink();
  return *S;
}

void ProfileSink::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Programs.clear();
  Pool = PoolUtilization();
}

bool ProfileSink::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Programs.empty() && Pool.Jobs == 0;
}

/// Two profiles describe the same lowered program when every loop's
/// static identity (variable, location, nesting) lines up.
static bool sameShape(const ProgramProfile &A, const ProgramProfile &B) {
  if (A.Name != B.Name || A.Tier != B.Tier || A.Loops.size() != B.Loops.size())
    return false;
  for (size_t I = 0; I < A.Loops.size(); ++I) {
    const ProfiledLoop &L = A.Loops[I], &R = B.Loops[I];
    if (L.Var != R.Var || L.Line != R.Line || L.Col != R.Col ||
        L.Parent != R.Parent)
      return false;
  }
  return true;
}

void ProfileSink::record(const ProgramProfile &P) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (ProgramProfile &Have : Programs) {
    if (!sameShape(Have, P))
      continue;
    Have.Runs += P.Runs;
    Have.RootInstrs += P.RootInstrs;
    Have.RootChecks += P.RootChecks;
    Have.RootNanos += P.RootNanos;
    for (size_t I = 0; I < P.Loops.size(); ++I) {
      ProfiledLoop &L = Have.Loops[I];
      const ProfiledLoop &R = P.Loops[I];
      L.Entries += R.Entries;
      L.Trips += R.Trips;
      L.Instrs += R.Instrs;
      L.Checks += R.Checks;
      L.Nanos += R.Nanos;
      // The par class can differ between runs (e.g. a -j1 run after a
      // -j8 run); keep the most recent non-serial answer.
      if (R.ParClass != "serial")
        L.ParClass = R.ParClass;
      if (!R.Witness.empty())
        L.Witness = R.Witness;
    }
    return;
  }
  Programs.push_back(P);
}

void ProfileSink::recordPool(const PoolUtilization &U) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Pool.Jobs += U.Jobs;
  Pool.MaxQueueDepth = std::max(Pool.MaxQueueDepth, U.MaxQueueDepth);
  if (Pool.Workers.size() < U.Workers.size())
    Pool.Workers.resize(U.Workers.size());
  for (size_t I = 0; I < U.Workers.size(); ++I) {
    Pool.Workers[I].Tasks += U.Workers[I].Tasks;
    Pool.Workers[I].Steals += U.Workers[I].Steals;
    Pool.Workers[I].IdleNanos += U.Workers[I].IdleNanos;
  }
}

std::vector<ProgramProfile> ProfileSink::programsSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Programs;
}

PoolUtilization ProfileSink::poolSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pool;
}

namespace {

/// One row of the ranked table: a loop plus where it came from.
struct Row {
  const ProgramProfile *Prog;
  const ProfiledLoop *Loop;
};

std::string locStr(const ProfiledLoop &L) {
  if (L.Line == 0)
    return "<unknown>";
  return std::to_string(L.Line) + ":" + std::to_string(L.Col);
}

std::string msStr(uint64_t Nanos) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", static_cast<double>(Nanos) / 1e6);
  return Buf;
}

std::string pctStr(uint64_t Part, uint64_t Whole) {
  if (Whole == 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%",
                100.0 * static_cast<double>(Part) / static_cast<double>(Whole));
  return Buf;
}

} // namespace

void ProfileSink::printTable(std::ostream &OS) const {
  std::vector<ProgramProfile> Progs = programsSnapshot();
  PoolUtilization PU = poolSnapshot();

  uint64_t TotalNanos = 0;
  std::vector<Row> Rows;
  for (const ProgramProfile &P : Progs) {
    TotalNanos += P.RootNanos;
    for (const ProfiledLoop &L : P.Loops)
      Rows.push_back({&P, &L});
  }
  std::stable_sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.Loop->Nanos > B.Loop->Nanos;
  });

  OS << "=== profile ===\n";
  if (Rows.empty()) {
    OS << "  (no LIR loops executed)\n";
  } else {
    OS << "  " << std::left << std::setw(4) << "#" << std::setw(10)
       << "time(ms)" << std::setw(8) << "%total" << std::right << std::setw(12)
       << "trips" << std::setw(14) << "instrs" << std::setw(12) << "checks"
       << "  " << std::left << std::setw(12) << "par" << std::setw(10) << "loc"
       << "target.var\n";
    int N = 0;
    for (const Row &R : Rows) {
      const ProfiledLoop &L = *R.Loop;
      OS << "  " << std::left << std::setw(4) << ++N << std::setw(10)
         << msStr(L.Nanos) << std::setw(8) << pctStr(L.Nanos, TotalNanos)
         << std::right << std::setw(12) << L.Trips << std::setw(14) << L.Instrs
         << std::setw(12) << L.Checks << "  " << std::left << std::setw(12)
         << L.ParClass << std::setw(10) << locStr(L) << R.Prog->Name << "."
         << L.Var;
      for (uint32_t D = 0; D < L.Depth; ++D)
        OS << "'"; // tick marks distinguish same-named nested loops
      OS << "\n";
      if (L.ParClass == "serial" && !L.Witness.empty())
        OS << "  " << std::setw(4) << "" << "HAC008: " << L.Witness << "\n";
    }
  }

  OS << "  --\n";
  for (const ProgramProfile &P : Progs) {
    OS << "  " << P.Name << ": " << P.Runs << " run(s), "
       << msStr(P.RootNanos) << " ms, " << P.RootInstrs << " instrs, "
       << P.RootChecks << " checks";
    // Mark rows a JIT kernel executed; interpreter rows keep the format
    // the smoke tests and goldens have always seen.
    if (P.Tier != "interp")
      OS << " [" << P.Tier << "]";
    OS << "\n";
  }

  if (PU.Jobs != 0) {
    OS << "  -- thread pool --\n";
    OS << "  jobs " << PU.Jobs << ", max queue depth " << PU.MaxQueueDepth
       << "\n";
    for (size_t I = 0; I < PU.Workers.size(); ++I) {
      const PoolUtilization::Worker &W = PU.Workers[I];
      OS << "  worker " << I << ": " << W.Tasks << " tasks, " << W.Steals
         << " steals, " << msStr(W.IdleNanos) << " ms idle\n";
    }
  }
  OS << "profiled " << Rows.size() << " loops in " << Progs.size()
     << " program(s)\n";
}

void ProfileSink::writeJson(std::ostream &OS, unsigned Indent) const {
  std::vector<ProgramProfile> Progs = programsSnapshot();
  PoolUtilization PU = poolSnapshot();
  std::string Pad(Indent, ' ');

  OS << "{\n" << Pad << "  \"programs\": [";
  for (size_t PI = 0; PI < Progs.size(); ++PI) {
    const ProgramProfile &P = Progs[PI];
    OS << (PI ? ",\n" : "\n") << Pad << "    {\"name\": " << jsonQuote(P.Name)
       << ", \"tier\": " << jsonQuote(P.Tier)
       << ", \"runs\": " << P.Runs << ", \"root_instrs\": " << P.RootInstrs
       << ", \"root_checks\": " << P.RootChecks
       << ", \"root_nanos\": " << P.RootNanos << ", \"loops\": [";
    for (size_t LI = 0; LI < P.Loops.size(); ++LI) {
      const ProfiledLoop &L = P.Loops[LI];
      OS << (LI ? ",\n" : "\n") << Pad << "      {\"var\": "
         << jsonQuote(L.Var) << ", \"line\": " << L.Line
         << ", \"col\": " << L.Col << ", \"depth\": " << L.Depth
         << ", \"parent\": " << L.Parent
         << ", \"par\": " << jsonQuote(L.ParClass)
         << ", \"witness\": " << jsonQuote(L.Witness)
         << ", \"entries\": " << L.Entries << ", \"trips\": " << L.Trips
         << ", \"instrs\": " << L.Instrs << ", \"checks\": " << L.Checks
         << ", \"nanos\": " << L.Nanos << "}";
    }
    OS << (P.Loops.empty() ? "]" : "\n" + Pad + "    ]") << "}";
  }
  OS << (Progs.empty() ? "]" : "\n" + Pad + "  ]") << ",\n";

  OS << Pad << "  \"pool\": {\"jobs\": " << PU.Jobs
     << ", \"max_queue_depth\": " << PU.MaxQueueDepth << ", \"workers\": [";
  for (size_t I = 0; I < PU.Workers.size(); ++I) {
    const PoolUtilization::Worker &W = PU.Workers[I];
    OS << (I ? ", " : "") << "{\"tasks\": " << W.Tasks
       << ", \"steals\": " << W.Steals << ", \"idle_nanos\": " << W.IdleNanos
       << "}";
  }
  OS << "]}\n" << Pad << "}";
}

} // namespace hac
