//===- support/SourceLoc.h - Source locations and ranges -------*- C++ -*-===//
//
// Part of the hac project: a reproduction of Anderson & Hudak,
// "Compilation of Haskell Array Comprehensions for Scientific Computing",
// PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight 1-based line/column source locations used by the lexer,
/// parser, and diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_SUPPORT_SOURCELOC_H
#define HAC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace hac {

/// A position in a source buffer. Line and column are 1-based; a value of
/// 0 in both fields denotes an invalid/unknown location.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }
  bool operator<(const SourceLoc &RHS) const {
    return Line < RHS.Line || (Line == RHS.Line && Col < RHS.Col);
  }

  /// Renders the location as "line:col", or "<unknown>" if invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// A half-open range of source text, [Begin, End).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace hac

#endif // HAC_SUPPORT_SOURCELOC_H
