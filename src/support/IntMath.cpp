//===- support/IntMath.cpp - Integer number theory helpers ----------------===//

#include "support/IntMath.h"

#include <cassert>
#include <limits>

using namespace hac;

int64_t hac::gcd64(int64_t A, int64_t B) {
  // Work with unsigned magnitudes so that INT64_MIN is handled correctly.
  uint64_t UA = A < 0 ? 0ull - static_cast<uint64_t>(A) : A;
  uint64_t UB = B < 0 ? 0ull - static_cast<uint64_t>(B) : B;
  while (UB != 0) {
    uint64_t T = UA % UB;
    UA = UB;
    UB = T;
  }
  return static_cast<int64_t>(UA);
}

ExtGcdResult hac::extGcd64(int64_t A, int64_t B) {
  // Iterative extended Euclid on signed values; the returned G is
  // non-negative and A*X + B*Y == G.
  int64_t OldR = A, R = B;
  int64_t OldS = 1, S = 0;
  int64_t OldT = 0, T = 1;
  while (R != 0) {
    int64_t Q = OldR / R;
    int64_t Tmp = OldR - Q * R;
    OldR = R;
    R = Tmp;
    Tmp = OldS - Q * S;
    OldS = S;
    S = Tmp;
    Tmp = OldT - Q * T;
    OldT = T;
    T = Tmp;
  }
  if (OldR < 0) {
    OldR = -OldR;
    OldS = -OldS;
    OldT = -OldT;
  }
  return ExtGcdResult{OldR, OldS, OldT};
}

static constexpr int64_t I64Max = std::numeric_limits<int64_t>::max();
static constexpr int64_t I64Min = std::numeric_limits<int64_t>::min();

int64_t hac::satAdd(int64_t A, int64_t B) {
  int64_t Result;
  if (!__builtin_add_overflow(A, B, &Result))
    return Result;
  return B > 0 ? I64Max : I64Min;
}

int64_t hac::satSub(int64_t A, int64_t B) {
  int64_t Result;
  if (!__builtin_sub_overflow(A, B, &Result))
    return Result;
  return B < 0 ? I64Max : I64Min;
}

int64_t hac::satMul(int64_t A, int64_t B) {
  int64_t Result;
  if (!__builtin_mul_overflow(A, B, &Result))
    return Result;
  bool Negative = (A < 0) != (B < 0);
  return Negative ? I64Min : I64Max;
}

int64_t hac::floorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "floorDiv by zero");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t hac::ceilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "ceilDiv by zero");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}
