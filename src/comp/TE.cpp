//===- comp/TE.cpp - The paper's TE comprehension translation -------------===//

#include "comp/TE.h"

#include "ast/ASTUtils.h"
#include "support/Casting.h"

using namespace hac;

namespace {

/// TE over the comprehension body: peels one qualifier per step.
ExprPtr translateComp(const CompExpr *C, size_t QualIndex);

/// TE over a nested-comprehension head (a list-producing expression).
ExprPtr translateHead(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOpKind::Append)
      return makeBinary(BinaryOpKind::Append, translateHead(B->lhs()),
                        translateHead(B->rhs()));
    break;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    std::vector<LetBind> Binds;
    for (const LetBind &B : L->binds())
      Binds.emplace_back(B.Name, desugarComprehensions(B.Value.get()), B.Loc);
    return std::make_unique<LetExpr>(L->letKind(), std::move(Binds),
                                     translateHead(L->body()), E->loc());
  }
  case ExprKind::List: {
    const auto *L = cast<ListExpr>(E);
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : L->elems())
      Elems.push_back(desugarComprehensions(Elem.get()));
    return std::make_unique<ListExpr>(std::move(Elems), E->loc());
  }
  case ExprKind::Comp:
    return translateComp(cast<CompExpr>(E), 0);
  default:
    break;
  }
  // Any other list-producing expression is left as-is (desugared inside).
  return desugarComprehensions(E);
}

ExprPtr translateComp(const CompExpr *C, size_t QualIndex) {
  if (QualIndex == C->quals().size()) {
    if (C->isNested())
      return translateHead(C->head());
    // Ordinary comprehension: TE{ [E] } = [E].
    std::vector<ExprPtr> Single;
    Single.push_back(desugarComprehensions(C->head()));
    return std::make_unique<ListExpr>(std::move(Single), C->loc());
  }

  const CompQual &Q = C->quals()[QualIndex];
  switch (Q.kind()) {
  case CompQual::Kind::Generator: {
    // flatmap (\i . TE{ rest }) L
    ExprPtr Lambda = std::make_unique<LambdaExpr>(
        std::vector<std::string>{Q.var()}, translateComp(C, QualIndex + 1),
        Q.loc());
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(Lambda));
    Args.push_back(desugarComprehensions(Q.source()));
    return std::make_unique<ApplyExpr>(makeVar("flatmap"), std::move(Args),
                                       C->loc());
  }
  case CompQual::Kind::Guard:
    // if B then TE{ rest } else []
    return std::make_unique<IfExpr>(
        desugarComprehensions(Q.cond()), translateComp(C, QualIndex + 1),
        std::make_unique<ListExpr>(std::vector<ExprPtr>(), Q.loc()),
        C->loc());
  case CompQual::Kind::LetQual: {
    std::vector<LetBind> Binds;
    for (const LetBind &B : Q.binds())
      Binds.emplace_back(B.Name, desugarComprehensions(B.Value.get()), B.Loc);
    return std::make_unique<LetExpr>(LetKindEnum::Plain, std::move(Binds),
                                     translateComp(C, QualIndex + 1),
                                     Q.loc());
  }
  }
  return nullptr;
}

} // namespace

ExprPtr hac::desugarComprehensions(const Expr *E) {
  if (!E)
    return nullptr;
  if (const auto *C = dyn_cast<CompExpr>(E))
    return translateComp(C, 0);

  // Structural recursion: rebuild the node with desugared children. Reuse
  // clone for leaves.
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::BoolLit:
  case ExprKind::Var:
    return cloneExpr(E);
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return std::make_unique<UnaryExpr>(
        U->op(), desugarComprehensions(U->operand()), E->loc());
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return std::make_unique<BinaryExpr>(B->op(),
                                        desugarComprehensions(B->lhs()),
                                        desugarComprehensions(B->rhs()),
                                        E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return std::make_unique<IfExpr>(desugarComprehensions(I->cond()),
                                    desugarComprehensions(I->thenExpr()),
                                    desugarComprehensions(I->elseExpr()),
                                    E->loc());
  }
  case ExprKind::Tuple: {
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : cast<TupleExpr>(E)->elems())
      Elems.push_back(desugarComprehensions(Elem.get()));
    return std::make_unique<TupleExpr>(std::move(Elems), E->loc());
  }
  case ExprKind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    return std::make_unique<LambdaExpr>(
        L->params(), desugarComprehensions(L->body()), E->loc());
  }
  case ExprKind::Apply: {
    const auto *A = cast<ApplyExpr>(E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : A->args())
      Args.push_back(desugarComprehensions(Arg.get()));
    return std::make_unique<ApplyExpr>(desugarComprehensions(A->fn()),
                                       std::move(Args), E->loc());
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    std::vector<LetBind> Binds;
    for (const LetBind &B : L->binds())
      Binds.emplace_back(B.Name, desugarComprehensions(B.Value.get()), B.Loc);
    return std::make_unique<LetExpr>(L->letKind(), std::move(Binds),
                                     desugarComprehensions(L->body()),
                                     E->loc());
  }
  case ExprKind::Range: {
    const auto *R = cast<RangeExpr>(E);
    return std::make_unique<RangeExpr>(
        desugarComprehensions(R->lo()),
        R->second() ? desugarComprehensions(R->second()) : nullptr,
        desugarComprehensions(R->hi()), E->loc());
  }
  case ExprKind::List: {
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : cast<ListExpr>(E)->elems())
      Elems.push_back(desugarComprehensions(Elem.get()));
    return std::make_unique<ListExpr>(std::move(Elems), E->loc());
  }
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(E);
    return std::make_unique<SvPairExpr>(
        desugarComprehensions(P->subscript()),
        desugarComprehensions(P->value()), E->loc());
  }
  case ExprKind::ArraySub: {
    const auto *S = cast<ArraySubExpr>(E);
    return std::make_unique<ArraySubExpr>(desugarComprehensions(S->base()),
                                          desugarComprehensions(S->index()),
                                          E->loc());
  }
  case ExprKind::MakeArray: {
    const auto *M = cast<MakeArrayExpr>(E);
    return std::make_unique<MakeArrayExpr>(
        desugarComprehensions(M->bounds()),
        desugarComprehensions(M->svList()), E->loc());
  }
  case ExprKind::AccumArray: {
    const auto *A = cast<AccumArrayExpr>(E);
    return std::make_unique<AccumArrayExpr>(
        desugarComprehensions(A->fn()), desugarComprehensions(A->init()),
        desugarComprehensions(A->bounds()),
        desugarComprehensions(A->svList()), E->loc());
  }
  case ExprKind::BigUpd: {
    const auto *U = cast<BigUpdExpr>(E);
    return std::make_unique<BigUpdExpr>(desugarComprehensions(U->base()),
                                        desugarComprehensions(U->svList()),
                                        E->loc());
  }
  case ExprKind::ForceElements:
    return std::make_unique<ForceElementsExpr>(
        desugarComprehensions(cast<ForceElementsExpr>(E)->arg()), E->loc());
  case ExprKind::Comp:
    break; // handled above
  }
  return nullptr;
}
