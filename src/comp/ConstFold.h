//===- comp/ConstFold.h - Compile-time integer evaluation -------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compile-time evaluator for integer expressions over named
/// parameters. The subscript analysis (Section 6) assumes statically known
/// loop bounds; the driver supplies concrete values for free parameters
/// like `n`, and this folder evaluates range endpoints and array bounds.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_COMP_CONSTFOLD_H
#define HAC_COMP_CONSTFOLD_H

#include "ast/Expr.h"

#include <cstdint>
#include <map>
#include <string>

namespace hac {

/// Named compile-time integer parameters (e.g. {"n", 100}).
using ParamEnv = std::map<std::string, int64_t>;

/// Attempts to evaluate \p E to an integer constant given \p Params.
/// Handles literals, parameter references, +, -, *, /, %, unary negation,
/// min/max applications, and parenthesized forms. Returns false when the
/// expression is not a compile-time integer.
bool tryEvalConstInt(const Expr *E, const ParamEnv &Params, int64_t &Out);

} // namespace hac

#endif // HAC_COMP_CONSTFOLD_H
