//===- comp/TE.h - The paper's TE comprehension translation -----*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation rule TE of Section 3.1, mapping (nested) list
/// comprehensions to the primitive constructs `flatmap`, `if`, `++`,
/// `let`, and singleton lists:
///
/// \code
///   TE{ [* E | i <- L *] }    = flatmap (\i . TE{ E }) L
///   TE{ [* E | i <- L; Q *] } = flatmap (\i . TE{ [* E | Q *] }) L
///   TE{ [* E | B *] }         = if B then TE{ E } else []
///   TE{ E1 ++ E2 }            = TE{ E1 } ++ TE{ E2 }
///   TE{ let BINDS in E }      = let BINDS in TE{ E }
///   TE{ [E] }                 = [E]
/// \endcode
///
/// TE makes the semantics of nested comprehensions clear; the test suite
/// checks that evaluating TE's output agrees with the interpreter's direct
/// comprehension evaluation (and that TE indeed CONSes proportionally).
///
//===----------------------------------------------------------------------===//

#ifndef HAC_COMP_TE_H
#define HAC_COMP_TE_H

#include "ast/Expr.h"

namespace hac {

/// Recursively rewrites every comprehension in \p E using the TE rules.
/// The result uses `flatmap` (an interpreter builtin) and contains no Comp
/// nodes.
ExprPtr desugarComprehensions(const Expr *E);

} // namespace hac

#endif // HAC_COMP_TE_H
