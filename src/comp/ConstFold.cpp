//===- comp/ConstFold.cpp - Compile-time integer evaluation ---------------===//

#include "comp/ConstFold.h"

#include "support/Casting.h"

using namespace hac;

bool hac::tryEvalConstInt(const Expr *E, const ParamEnv &Params,
                          int64_t &Out) {
  if (!E)
    return false;
  switch (E->kind()) {
  case ExprKind::IntLit:
    Out = cast<IntLitExpr>(E)->value();
    return true;
  case ExprKind::Var: {
    auto It = Params.find(cast<VarExpr>(E)->name());
    if (It == Params.end())
      return false;
    Out = It->second;
    return true;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() != UnaryOpKind::Neg)
      return false;
    int64_t V;
    if (!tryEvalConstInt(U->operand(), Params, V))
      return false;
    Out = -V;
    return true;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int64_t L, R;
    if (!tryEvalConstInt(B->lhs(), Params, L) ||
        !tryEvalConstInt(B->rhs(), Params, R))
      return false;
    switch (B->op()) {
    case BinaryOpKind::Add:
      Out = L + R;
      return true;
    case BinaryOpKind::Sub:
      Out = L - R;
      return true;
    case BinaryOpKind::Mul:
      Out = L * R;
      return true;
    case BinaryOpKind::Div:
      if (R == 0)
        return false;
      Out = L / R;
      return true;
    case BinaryOpKind::Mod:
      if (R == 0)
        return false;
      Out = L % R;
      return true;
    default:
      return false;
    }
  }
  case ExprKind::Apply: {
    const auto *A = cast<ApplyExpr>(E);
    const auto *Fn = dyn_cast<VarExpr>(A->fn());
    if (!Fn || A->numArgs() != 2)
      return false;
    int64_t L, R;
    if (!tryEvalConstInt(A->arg(0), Params, L) ||
        !tryEvalConstInt(A->arg(1), Params, R))
      return false;
    if (Fn->name() == "min") {
      Out = L < R ? L : R;
      return true;
    }
    if (Fn->name() == "max") {
      Out = L > R ? L : R;
      return true;
    }
    return false;
  }
  default:
    return false;
  }
}
