//===- comp/CompNest.h - Clause-tree / loop-nest IR -------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clause tree the analyses operate on. A (nested) comprehension over
/// arithmetic-sequence generators is translated into a tree of loops,
/// guards, and s/v clauses — the "expression tree" of Section 3.1 / 5. An
/// s/v clause "plays a role very similar to an assignment statement in a
/// DO loop" (Section 5); the dependence graph's vertices are exactly these
/// clauses.
///
/// `let` qualifiers and `where` bindings are inlined (substituted) into
/// clause subscript and value expressions so that every array reference is
/// visible to the subscript analysis. Loop bounds are constant-folded
/// against the driver-supplied parameter environment, matching the paper's
/// "loop bounds are statically known" assumption.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_COMP_COMPNEST_H
#define HAC_COMP_COMPNEST_H

#include "ast/Expr.h"
#include "comp/ConstFold.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace hac {

/// Static bounds of one generator `i <- [Lo, Lo+Step .. Hi]`.
struct LoopBounds {
  int64_t Lo = 1;
  int64_t Hi = 0;
  int64_t Step = 1;

  /// Number of iterations (0 when the range is empty).
  int64_t tripCount() const {
    if (Step > 0)
      return Hi >= Lo ? (Hi - Lo) / Step + 1 : 0;
    return Lo >= Hi ? (Lo - Hi) / (-Step) + 1 : 0;
  }
};

class CompNode;
class SeqNode;
class LoopNode;
class GuardNode;
class ClauseNode;
using CompNodePtr = std::unique_ptr<CompNode>;

enum class CompNodeKind : uint8_t { Seq, Loop, Guard, Clause };

/// Base class of clause-tree nodes.
class CompNode {
public:
  CompNode(const CompNode &) = delete;
  CompNode &operator=(const CompNode &) = delete;
  virtual ~CompNode();

  CompNodeKind kind() const { return Kind; }

protected:
  explicit CompNode(CompNodeKind Kind) : Kind(Kind) {}

private:
  CompNodeKind Kind;
};

/// Ordered children appended together (`++` and list structure).
class SeqNode : public CompNode {
public:
  SeqNode() : CompNode(CompNodeKind::Seq) {}

  void add(CompNodePtr Child) { Children.push_back(std::move(Child)); }
  const std::vector<CompNodePtr> &children() const { return Children; }

  static bool classof(const CompNode *N) {
    return N->kind() == CompNodeKind::Seq;
  }

private:
  std::vector<CompNodePtr> Children;
};

/// One generator, with statically known bounds. Depth 0 is outermost.
class LoopNode : public CompNode {
public:
  LoopNode(unsigned Id, std::string Var, LoopBounds Bounds, unsigned Depth)
      : CompNode(CompNodeKind::Loop), Id(Id), Var(std::move(Var)),
        Bounds(Bounds), Depth(Depth), Body(std::make_unique<SeqNode>()) {}

  unsigned id() const { return Id; }
  const std::string &var() const { return Var; }
  const LoopBounds &bounds() const { return Bounds; }
  unsigned depth() const { return Depth; }
  SeqNode *body() { return Body.get(); }
  const SeqNode *body() const { return Body.get(); }

  static bool classof(const CompNode *N) {
    return N->kind() == CompNodeKind::Loop;
  }

private:
  unsigned Id;
  std::string Var;
  LoopBounds Bounds;
  unsigned Depth;
  std::unique_ptr<SeqNode> Body;
};

/// A boolean guard around its children. Dependence analysis ignores guard
/// conditions (sound over-approximation); coverage analysis treats guarded
/// clauses as unknown-count.
class GuardNode : public CompNode {
public:
  explicit GuardNode(ExprPtr Cond)
      : CompNode(CompNodeKind::Guard), Cond(std::move(Cond)),
        Body(std::make_unique<SeqNode>()) {}

  const Expr *cond() const { return Cond.get(); }
  SeqNode *body() { return Body.get(); }
  const SeqNode *body() const { return Body.get(); }

  static bool classof(const CompNode *N) {
    return N->kind() == CompNodeKind::Guard;
  }

private:
  ExprPtr Cond;
  std::unique_ptr<SeqNode> Body;
};

/// One s/v clause: the vertex type of the dependence graph. Subscript
/// dimension expressions and the value expression have `let`s inlined;
/// their free variables are loop indices, compile-time parameters, and
/// array names.
class ClauseNode : public CompNode {
public:
  ClauseNode(unsigned Id, std::vector<ExprPtr> Subscripts, ExprPtr Value,
             std::vector<const LoopNode *> Loops,
             std::vector<const GuardNode *> Guards, SourceLoc Loc)
      : CompNode(CompNodeKind::Clause), Id(Id),
        Subscripts(std::move(Subscripts)), Value(std::move(Value)),
        Loops(std::move(Loops)), Guards(std::move(Guards)), Loc(Loc) {}

  unsigned id() const { return Id; }
  unsigned rank() const { return Subscripts.size(); }
  const Expr *subscript(unsigned Dim) const { return Subscripts[Dim].get(); }
  const std::vector<ExprPtr> &subscripts() const { return Subscripts; }
  const Expr *value() const { return Value.get(); }
  /// Enclosing loops, outermost first.
  const std::vector<const LoopNode *> &loops() const { return Loops; }
  const std::vector<const GuardNode *> &guards() const { return Guards; }
  bool isGuarded() const { return !Guards.empty(); }
  SourceLoc loc() const { return Loc; }

  static bool classof(const CompNode *N) {
    return N->kind() == CompNodeKind::Clause;
  }

private:
  unsigned Id;
  std::vector<ExprPtr> Subscripts;
  ExprPtr Value;
  std::vector<const LoopNode *> Loops;
  std::vector<const GuardNode *> Guards;
  SourceLoc Loc;
};

/// The whole clause tree for one array expression's s/v list, with flat
/// indexes of clauses and loops.
struct CompNest {
  /// False when the s/v list used a construct the static pipeline does not
  /// model (non-range generator, clause through a variable, ...). The
  /// driver then falls back to the lazy interpreter.
  bool Analyzable = true;
  std::string FallbackReason;

  CompNodePtr Root;
  std::vector<const ClauseNode *> Clauses;
  std::vector<const LoopNode *> Loops;

  const ClauseNode *clause(unsigned Id) const { return Clauses[Id]; }
  unsigned numClauses() const { return Clauses.size(); }
};

/// Builds the clause tree for \p SvList (the second argument of `array` or
/// `bigupd`). \p Params supplies values for free integer parameters used
/// in loop bounds. Problems are reported to \p Diags (as warnings) and
/// recorded in the returned nest's FallbackReason.
CompNest buildCompNest(const Expr *SvList, const ParamEnv &Params,
                       DiagnosticEngine &Diags);

/// Renders the nest as an indented tree (tests and tools).
std::string compNestToString(const CompNest &Nest);

} // namespace hac

#endif // HAC_COMP_COMPNEST_H
