//===- comp/CompNest.cpp - Clause-tree construction -----------------------===//

#include "comp/CompNest.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtils.h"
#include "support/Casting.h"

#include <map>
#include <sstream>

using namespace hac;

CompNode::~CompNode() = default;

namespace {

/// Builder state threaded through the recursive walk.
class NestBuilder {
public:
  NestBuilder(const ParamEnv &Params, DiagnosticEngine &Diags)
      : Params(Params), Diags(Diags) {}

  CompNest build(const Expr *SvList) {
    auto Root = std::make_unique<SeqNode>();
    walk(SvList, Root.get());
    Nest.Root = std::move(Root);
    if (!Nest.Analyzable && Nest.FallbackReason.empty())
      Nest.FallbackReason = "unsupported construct in subscript/value list";
    return std::move(Nest);
  }

private:
  const ParamEnv &Params;
  DiagnosticEngine &Diags;
  CompNest Nest;
  unsigned NextClauseId = 0;
  unsigned NextLoopId = 0;

  std::vector<const LoopNode *> LoopStack;
  std::vector<const GuardNode *> GuardStack;
  /// Inlined `let`/`where` bindings, innermost last. RHSs are already
  /// fully substituted at record time.
  std::vector<std::pair<std::string, ExprPtr>> Substs;

  void fallback(SourceLoc Loc, const std::string &Reason) {
    if (Nest.Analyzable) {
      Nest.Analyzable = false;
      Nest.FallbackReason = Reason;
      Diags.warning(Loc, "array comprehension not statically analyzable: " +
                             Reason + "; falling back to thunked evaluation");
    }
  }

  /// Applies all recorded substitutions (innermost wins because later
  /// entries were substituted against earlier ones at record time).
  ExprPtr applySubsts(const Expr *E) {
    ExprPtr Result = cloneExpr(E);
    for (const auto &[Name, RHS] : Substs)
      Result = substitute(Result.get(), Name, RHS.get());
    return Result;
  }

  void recordSubst(const std::string &Name, const Expr *RHS) {
    Substs.emplace_back(Name, applySubsts(RHS));
  }

  void dropSubsts(size_t Mark) {
    Substs.erase(Substs.begin() + Mark, Substs.end());
  }

  /// Removes substitutions shadowed by a loop variable.
  void shadowVar(const std::string &Var) {
    for (auto It = Substs.begin(); It != Substs.end();)
      It = It->first == Var ? Substs.erase(It) : std::next(It);
  }

  void makeClause(const SvPairExpr *P, SeqNode *Out) {
    std::vector<ExprPtr> Subscripts;
    if (const auto *T = dyn_cast<TupleExpr>(P->subscript())) {
      for (const ExprPtr &Dim : T->elems())
        Subscripts.push_back(applySubsts(Dim.get()));
    } else {
      Subscripts.push_back(applySubsts(P->subscript()));
    }
    ExprPtr Value = applySubsts(P->value());
    auto Clause = std::make_unique<ClauseNode>(
        NextClauseId++, std::move(Subscripts), std::move(Value), LoopStack,
        GuardStack, P->loc());
    Nest.Clauses.push_back(Clause.get());
    Out->add(std::move(Clause));
  }

  /// Evaluates a generator range; false when bounds are not static.
  bool rangeBounds(const RangeExpr *R, LoopBounds &Out) {
    int64_t Lo, Hi;
    if (!tryEvalConstInt(R->lo(), Params, Lo) ||
        !tryEvalConstInt(R->hi(), Params, Hi))
      return false;
    int64_t Step = 1;
    if (R->hasSecond()) {
      int64_t Second;
      if (!tryEvalConstInt(R->second(), Params, Second))
        return false;
      Step = Second - Lo;
      if (Step == 0)
        return false;
    }
    Out = LoopBounds{Lo, Hi, Step};
    return true;
  }

  void walkComp(const CompExpr *C, size_t QualIndex, SeqNode *Out) {
    if (QualIndex == C->quals().size()) {
      if (C->isNested()) {
        walk(C->head(), Out);
        return;
      }
      const auto *P = dyn_cast<SvPairExpr>(C->head());
      if (!P) {
        fallback(C->loc(), "comprehension head is not an s/v pair (use "
                           "`s := v`)");
        return;
      }
      makeClause(P, Out);
      return;
    }

    const CompQual &Q = C->quals()[QualIndex];
    switch (Q.kind()) {
    case CompQual::Kind::Generator: {
      const auto *R = dyn_cast<RangeExpr>(Q.source());
      if (!R) {
        fallback(Q.loc(), "generator '" + Q.var() +
                              "' is not over an arithmetic sequence");
        return;
      }
      LoopBounds Bounds;
      if (!rangeBounds(R, Bounds)) {
        fallback(Q.loc(), "generator bounds for '" + Q.var() +
                              "' are not compile-time integers");
        return;
      }
      auto Loop = std::make_unique<LoopNode>(
          NextLoopId++, Q.var(), Bounds,
          static_cast<unsigned>(LoopStack.size()));
      LoopNode *L = Loop.get();
      Nest.Loops.push_back(L);
      shadowVar(Q.var());
      LoopStack.push_back(L);
      walkComp(C, QualIndex + 1, L->body());
      LoopStack.pop_back();
      Out->add(std::move(Loop));
      return;
    }
    case CompQual::Kind::Guard: {
      auto Guard = std::make_unique<GuardNode>(applySubsts(Q.cond()));
      GuardNode *G = Guard.get();
      GuardStack.push_back(G);
      walkComp(C, QualIndex + 1, G->body());
      GuardStack.pop_back();
      Out->add(std::move(Guard));
      return;
    }
    case CompQual::Kind::LetQual: {
      size_t Mark = Substs.size();
      for (const LetBind &B : Q.binds())
        recordSubst(B.Name, B.Value.get());
      walkComp(C, QualIndex + 1, Out);
      dropSubsts(Mark);
      return;
    }
    }
  }

  void walk(const Expr *E, SeqNode *Out) {
    if (!Nest.Analyzable)
      return;
    switch (E->kind()) {
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->op() != BinaryOpKind::Append) {
        fallback(E->loc(), "operator '" +
                               std::string(binaryOpSpelling(B->op())) +
                               "' does not produce a subscript/value list");
        return;
      }
      walk(B->lhs(), Out);
      walk(B->rhs(), Out);
      return;
    }
    case ExprKind::List: {
      const auto *L = cast<ListExpr>(E);
      for (const ExprPtr &Elem : L->elems()) {
        const auto *P = dyn_cast<SvPairExpr>(Elem.get());
        if (!P) {
          fallback(Elem->loc(), "list element is not an s/v pair");
          return;
        }
        makeClause(P, Out);
      }
      return;
    }
    case ExprKind::Comp:
      walkComp(cast<CompExpr>(E), 0, Out);
      return;
    case ExprKind::SvPair:
      makeClause(cast<SvPairExpr>(E), Out);
      return;
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      if (L->letKind() != LetKindEnum::Plain) {
        fallback(E->loc(), "recursive let inside a subscript/value list");
        return;
      }
      size_t Mark = Substs.size();
      for (const LetBind &B : L->binds())
        recordSubst(B.Name, B.Value.get());
      walk(L->body(), Out);
      dropSubsts(Mark);
      return;
    }
    default:
      fallback(E->loc(), std::string("subscript/value list contains a ") +
                             exprKindName(E->kind()) + " expression");
      return;
    }
  }
};

void printNode(const CompNode *N, std::ostringstream &OS, unsigned Indent) {
  auto Pad = [&]() {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  };
  switch (N->kind()) {
  case CompNodeKind::Seq:
    for (const CompNodePtr &C : cast<SeqNode>(N)->children())
      printNode(C.get(), OS, Indent);
    return;
  case CompNodeKind::Loop: {
    const auto *L = cast<LoopNode>(N);
    Pad();
    OS << "loop " << L->var() << " = [" << L->bounds().Lo;
    if (L->bounds().Step != 1)
      OS << ", " << (L->bounds().Lo + L->bounds().Step);
    OS << " .. " << L->bounds().Hi << "] {\n";
    printNode(L->body(), OS, Indent + 1);
    Pad();
    OS << "}\n";
    return;
  }
  case CompNodeKind::Guard: {
    const auto *G = cast<GuardNode>(N);
    Pad();
    OS << "guard " << exprToString(G->cond()) << " {\n";
    printNode(G->body(), OS, Indent + 1);
    Pad();
    OS << "}\n";
    return;
  }
  case CompNodeKind::Clause: {
    const auto *C = cast<ClauseNode>(N);
    Pad();
    OS << "clause #" << C->id() << " [";
    for (unsigned D = 0; D != C->rank(); ++D) {
      if (D)
        OS << ", ";
      OS << exprToString(C->subscript(D));
    }
    OS << "] := " << exprToString(C->value()) << "\n";
    return;
  }
  }
}

} // namespace

CompNest hac::buildCompNest(const Expr *SvList, const ParamEnv &Params,
                            DiagnosticEngine &Diags) {
  return NestBuilder(Params, Diags).build(SvList);
}

std::string hac::compNestToString(const CompNest &Nest) {
  std::ostringstream OS;
  if (!Nest.Analyzable)
    OS << "<not analyzable: " << Nest.FallbackReason << ">\n";
  if (Nest.Root)
    printNode(Nest.Root.get(), OS, 0);
  return OS.str();
}
