//===- core/PipelineStages.cpp - Shared compilation stages ----------------===//

#include "core/PipelineStages.h"

#include "codegen/ShapeEstimate.h"
#include "frontend/Parser.h"
#include "lir/LIRAbsint.h"
#include "parallel/ParPlanner.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <set>

using namespace hac;
using namespace hac::stages;

namespace {

/// Records how one compile ended on the enclosing "compile" span.
void traceOutcome(bool Thunkless, const std::string &FallbackReason) {
  if (!traceEnabled())
    return;
  TraceSink::get().count(Thunkless ? "compile.thunkless"
                                   : "compile.fallback");
  TraceSink::get().annotate(Thunkless ? "thunkless"
                                      : "fallback: " + FallbackReason);
}

} // namespace

ExprPtr stages::parse(StageContext &Ctx, const std::string &Source) {
  HAC_TRACE_SPAN(Span, "parse");
  return parseString(Source, Ctx.Diags);
}

const Expr *stages::stripOuterLets(const Expr *E, ParamEnv &Params,
                                   std::vector<std::string> &InputNames) {
  for (;;) {
    const auto *L = dyn_cast<LetExpr>(E);
    if (!L)
      return E;
    // Stop at the defining letrec/letrec* whose binding is the array.
    if (L->letKind() != LetKindEnum::Plain) {
      bool IsTarget = false;
      for (const LetBind &B : L->binds())
        IsTarget |= isa<MakeArrayExpr>(B.Value.get()) ||
                    isa<AccumArrayExpr>(B.Value.get());
      if (IsTarget)
        return E;
    }
    for (const LetBind &B : L->binds()) {
      int64_t V;
      if (tryEvalConstInt(B.Value.get(), Params, V))
        Params[B.Name] = V;
      else
        InputNames.push_back(B.Name);
    }
    E = L->body();
  }
}

bool stages::arrayBoundsToDims(StageContext &Ctx, const Expr *Bounds,
                               const ParamEnv &Params, ArrayDims &Out) {
  const auto *T = dyn_cast<TupleExpr>(Bounds);
  if (!T || T->size() != 2) {
    Ctx.Diags.error(Bounds->loc(), "array bounds must be a pair");
    return false;
  }
  int64_t Lo, Hi;
  if (tryEvalConstInt(T->elem(0), Params, Lo) &&
      tryEvalConstInt(T->elem(1), Params, Hi)) {
    Out.emplace_back(Lo, Hi);
    return true;
  }
  const auto *LoT = dyn_cast<TupleExpr>(T->elem(0));
  const auto *HiT = dyn_cast<TupleExpr>(T->elem(1));
  if (!LoT || !HiT || LoT->size() != HiT->size()) {
    Ctx.Diags.error(Bounds->loc(),
                    "array bounds are not compile-time constants");
    return false;
  }
  for (unsigned D = 0; D != LoT->size(); ++D) {
    if (!tryEvalConstInt(LoT->elem(D), Params, Lo) ||
        !tryEvalConstInt(HiT->elem(D), Params, Hi)) {
      Ctx.Diags.error(Bounds->loc(),
                      "array bound is not a compile-time constant");
      return false;
    }
    Out.emplace_back(Lo, Hi);
  }
  return true;
}

CompNest stages::nest(StageContext &Ctx, const Expr *SvList,
                      const ParamEnv &Params) {
  HAC_TRACE_SPAN(Span, "clause-tree");
  return buildCompNest(SvList, Params, Ctx.Diags);
}

DepGraph stages::dependence(StageContext &Ctx, const CompNest &Nest,
                            const std::string &Target,
                            const ParamEnv &Params, DepGraphMode Mode) {
  DepGraphOptions GraphOptions;
  GraphOptions.ExactBudget = Ctx.Options.ExactBudget;
  GraphOptions.OmegaBudget = Ctx.Options.OmegaBudget;
  GraphOptions.SelfCheck = Ctx.Options.DepSelfCheck;
  return buildDepGraph(Nest, Target, Params, Mode, GraphOptions);
}

void stages::arrayAnalyses(StageContext &Ctx, CompiledArray &Result,
                           std::map<std::string, ArrayDims> Extents) {
  CollisionOptions ColOpts;
  ColOpts.ExactBudget = Ctx.Options.ExactBudget;
  ColOpts.OmegaBudget = Ctx.Options.OmegaBudget;
  ColOpts.SelfCheck = Ctx.Options.DepSelfCheck;
  Result.Collisions = analyzeCollisions(Result.Nest, Result.Params, ColOpts);
  Result.Coverage = analyzeCoverage(Result.Nest, Result.Dims, Result.Params,
                                    Result.Collisions);
  Extents[Result.Name] = Result.Dims;
  Result.ReadBounds =
      analyzeReadBounds(Result.Nest, Extents, Result.Params);
}

void stages::fallback(CompiledArray &Result, const std::string &Reason) {
  Result.Thunkless = false;
  Result.FallbackReason = Reason;
  traceOutcome(false, Reason);
}

void stages::fallback(CompiledUpdate &Result, const std::string &Reason) {
  Result.InPlace = false;
  Result.FallbackReason = Reason;
  traceOutcome(false, Reason);
}

bool stages::scheduleArray(StageContext &Ctx, CompiledArray &Result,
                           const std::vector<const DepEdge *> &Edges) {
  (void)Ctx;
  Result.Sched = scheduleNest(Result.Nest, Edges);
  if (!Result.Sched.Thunkless) {
    fallback(Result, Result.Sched.FailureReason);
    return false;
  }
  Result.Vectorization = analyzeVectorization(Result.Sched, Edges);
  return true;
}

void stages::maskUnprovenChecks(StageContext &Ctx,
                                CollisionAnalysis &Collisions,
                                CoverageAnalysis &Coverage,
                                ReadBoundsAnalysis &ReadBounds) {
  if (Ctx.Options.EnableCheckElimination)
    return;
  // Ablation: pretend nothing was proven.
  Collisions.NoCollisions = CheckOutcome::Unknown;
  Coverage.InBounds = CheckOutcome::Unknown;
  Coverage.NoEmpties = CheckOutcome::Unknown;
  ReadBounds.AllInBounds = CheckOutcome::Unknown;
}

std::vector<const DepEdge *>
stages::edgesAfterSplits(const std::vector<DepEdge> &Edges,
                         const std::vector<SplitAction> &Splits) {
  std::set<const Expr *> SplitReads;
  for (const SplitAction &A : Splits)
    SplitReads.insert(A.ReadRef);
  std::vector<const DepEdge *> Remaining;
  for (const DepEdge &E : Edges)
    if (!(E.Kind == DepKind::Anti && SplitReads.count(E.ReadRef)))
      Remaining.push_back(&E);
  return Remaining;
}

void stages::planAndFinish(StageContext &Ctx, ExecPlan &Plan,
                           const std::function<ExecPlan()> &Build,
                           const std::vector<const DepEdge *> &ParEdges,
                           const ArrayDims &Dims, const ParamEnv &Params) {
  {
    HAC_TRACE_SPAN(PlanSpan, "plan-build");
    Plan = Build();
  }
  // Classify every loop of the plan for the parallel backends; \p
  // ParEdges are the constraints the serial schedule honors.
  par::planParallel(Plan, ParEdges);
  if (Ctx.Options.VerifyLIR) {
    // Re-lower the plan to LIR and run the abstract interpreter over it:
    // translation validation of the checks the plan dropped (HAC009) and
    // static race checking of whatever the parallel planner flagged
    // (HAC010/HAC011), replicated at the configured worker count.
    // Update plans carry no static dims; the shape estimate (the same
    // one the profiler uses) gates validation there.
    ArrayDims VerifyDims = Dims;
    if (!VerifyDims.empty() ||
        estimateUpdateDims(Plan, Params, VerifyDims)) {
      HAC_TRACE_SPAN(Span, "verify-lir");
      lir::PlanVerifyOptions VO;
      VO.Threads = Ctx.Options.VerifyLIRThreads;
      lir::PlanVerifyResult R =
          lir::verifyPlanLIR(Plan, VerifyDims, Params, VO);
      lir::reportLIRFindings(R, Ctx.Diags);
    }
  }
  traceOutcome(true, "");
}

void stages::compileArrayBinding(StageContext &Ctx, CompiledArray &Result,
                                 const MakeArrayExpr *Make,
                                 std::map<std::string, ArrayDims> Extents) {
  Result.Nest = nest(Ctx, Make->svList(), Result.Params);
  if (!Result.Nest.Analyzable) {
    fallback(Result, Result.Nest.FallbackReason);
    return;
  }

  Result.Graph = dependence(Ctx, Result.Nest, Result.Name, Result.Params,
                            DepGraphMode::Monolithic);
  arrayAnalyses(Ctx, Result, std::move(Extents));

  if (Result.Collisions.NoCollisions == CheckOutcome::Disproven) {
    Ctx.Diags.error(SourceLoc(),
                    "write collision: " + Result.Collisions.witnessStr());
    fallback(Result, "definite write collision");
    return;
  }
  if (Result.Coverage.InBounds == CheckOutcome::Disproven)
    Ctx.Diags.warning(SourceLoc(),
                      "some array definitions are provably out of bounds: " +
                          Result.Coverage.detail());

  if (Result.Graph.HasUnknownRef) {
    fallback(Result, Result.Graph.UnknownRefReason);
    return;
  }

  // Schedule against the flow edges (output edges are error reports, not
  // ordering constraints, for plain monolithic arrays).
  std::vector<const DepEdge *> FlowEdges;
  for (const DepEdge &Edge : Result.Graph.Edges)
    if (Edge.Kind == DepKind::Flow)
      FlowEdges.push_back(&Edge);
  if (!scheduleArray(Ctx, Result, FlowEdges))
    return;

  Result.Thunkless = true;
  CollisionAnalysis EffCollisions = Result.Collisions;
  CoverageAnalysis EffCoverage = Result.Coverage;
  ReadBoundsAnalysis EffReadBounds = Result.ReadBounds;
  maskUnprovenChecks(Ctx, EffCollisions, EffCoverage, EffReadBounds);

  // The monolithic graph's flow and output edges are the constraints the
  // serial schedule honors.
  std::vector<const DepEdge *> AllEdges;
  for (const DepEdge &E : Result.Graph.Edges)
    AllEdges.push_back(&E);
  planAndFinish(
      Ctx, Result.Plan,
      [&] {
        return buildArrayPlan(Result.Nest, Result.Sched, Result.Name,
                              Result.Dims, EffCollisions, EffCoverage,
                              EffReadBounds);
      },
      AllEdges, Result.Dims, Result.Params);
}
