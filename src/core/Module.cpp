//===- core/Module.cpp - Multi-array module compilation -------------------===//

#include "core/Module.h"

#include "ast/ASTUtils.h"
#include "core/InterpBridge.h"
#include "core/PipelineStages.h"
#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "runtime/BufferPool.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace hac;

ModuleCompiler::ModuleCompiler(CompileOptions Options)
    : Options(std::move(Options)) {}

namespace {

/// Greedy last-use buffer planning over the topological order: a slot is
/// free for the binding at position P when its occupant's storage died
/// before P, and among free slots the smallest one already large enough
/// is preferred (best fit keeps the footprint tight).
BufferPlan planBuffers(const std::vector<ModuleBinding> &Bindings,
                       const std::vector<unsigned> &Topo, int ResultIndex) {
  const unsigned N = static_cast<unsigned>(Bindings.size());
  std::vector<unsigned> Pos(N, 0);
  for (unsigned P = 0; P != Topo.size(); ++P)
    Pos[Topo[P]] = P;

  BufferPlan Plan;
  Plan.Slot.assign(N, 0);
  Plan.BindingBytes.assign(N, 0);
  Plan.LastUse.assign(N, 0);
  for (unsigned B = 0; B != N; ++B) {
    size_t Elems = 1;
    for (const auto &[Lo, Hi] : Bindings[B].Array.Dims)
      Elems *= Hi >= Lo ? static_cast<size_t>(Hi - Lo + 1) : 0;
    Plan.BindingBytes[B] = Elems * sizeof(double);
    Plan.NoReusePeakBytes += Plan.BindingBytes[B];
    unsigned Last = Pos[B];
    for (unsigned C : Bindings[B].Consumers)
      Last = std::max(Last, Pos[C]);
    // The result is handed to the caller: its storage is never recycled.
    if (static_cast<int>(B) == ResultIndex)
      Last = N;
    Plan.LastUse[B] = Last;
  }

  std::vector<unsigned> Occupant; // slot -> binding currently assigned
  for (unsigned P = 0; P != Topo.size(); ++P) {
    unsigned B = Topo[P];
    int Chosen = -1;
    // The result is written straight into the caller's storage at run
    // time, so recycling a slot for it would claim savings the runtime
    // can't deliver: it always gets a fresh slot.
    const bool IsResult = static_cast<int>(B) == ResultIndex;
    for (unsigned S = 0; !IsResult && S != Occupant.size(); ++S) {
      if (Plan.LastUse[Occupant[S]] >= P)
        continue; // occupant still live at this position
      if (Chosen < 0) {
        Chosen = static_cast<int>(S);
        continue;
      }
      bool ChosenFits = Plan.SlotBytes[Chosen] >= Plan.BindingBytes[B];
      bool SFits = Plan.SlotBytes[S] >= Plan.BindingBytes[B];
      if (SFits && (!ChosenFits || Plan.SlotBytes[S] < Plan.SlotBytes[Chosen]))
        Chosen = static_cast<int>(S);
    }
    if (Chosen < 0) {
      Chosen = static_cast<int>(Occupant.size());
      Occupant.push_back(B);
      Plan.SlotBytes.push_back(0);
    } else {
      Occupant[Chosen] = B;
      ++Plan.Reused;
    }
    Plan.Slot[B] = static_cast<unsigned>(Chosen);
    Plan.SlotBytes[Chosen] =
        std::max(Plan.SlotBytes[Chosen], Plan.BindingBytes[B]);
  }
  for (size_t SB : Plan.SlotBytes)
    Plan.PeakBytes += SB;
  return Plan;
}

std::string joinNames(const std::vector<ModuleBinding> &Bindings,
                      const std::vector<unsigned> &Indices) {
  std::string Out;
  for (unsigned I : Indices) {
    if (!Out.empty())
      Out += ", ";
    Out += Bindings[I].Name;
  }
  return Out.empty() ? "-" : Out;
}

} // namespace

std::optional<CompiledModule>
ModuleCompiler::compileModule(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=module");
  stages::StageContext Ctx{Options, Diags};

  CompiledModule M;
  M.Source = Source;
  M.Params = Options.Params;
  M.Ast = stages::parse(Ctx, Source);
  if (!M.Ast)
    return std::nullopt;
  const Expr *E = stages::stripOuterLets(M.Ast.get(), M.Params, M.InputNames);

  const auto *L = dyn_cast<LetExpr>(E);
  if (!L) {
    Diags.error(E->loc(), "module program must define its arrays in a "
                          "letrec* of array bindings");
    return std::nullopt;
  }

  // Collect the array bindings. Non-array bindings demote the module to
  // the interpreter (letrec* is strict, so they still evaluate there)
  // except constant integers, which join the parameters.
  std::vector<const MakeArrayExpr *> Makes;
  for (const LetBind &B : L->binds()) {
    if (const auto *Make = dyn_cast<MakeArrayExpr>(B.Value.get())) {
      for (const ModuleBinding &Prev : M.Bindings)
        if (Prev.Name == B.Name) {
          Diags.error(B.Loc, "duplicate array binding '" + B.Name + "'");
          return std::nullopt;
        }
      ModuleBinding MB;
      MB.Name = B.Name;
      M.Bindings.push_back(std::move(MB));
      Makes.push_back(Make);
      continue;
    }
    int64_t V;
    if (!isa<AccumArrayExpr>(B.Value.get()) &&
        tryEvalConstInt(B.Value.get(), M.Params, V)) {
      M.Params[B.Name] = V;
      continue;
    }
    if (M.FallbackReason.empty())
      M.FallbackReason =
          isa<AccumArrayExpr>(B.Value.get())
              ? "binding '" + B.Name + "' is an accumArray: module "
                "compilation handles plain array bindings only"
              : "binding '" + B.Name + "' is not an array construction";
    ModuleBinding MB;
    MB.Name = B.Name;
    M.Bindings.push_back(std::move(MB));
    Makes.push_back(nullptr);
  }
  if (M.Bindings.empty()) {
    Diags.error(L->loc(), "module letrec* has no array bindings");
    return std::nullopt;
  }

  // The module result is the binding the body names.
  const auto *BodyVar = dyn_cast<VarExpr>(L->body());
  if (BodyVar)
    for (unsigned B = 0; B != M.Bindings.size(); ++B)
      if (M.Bindings[B].Name == BodyVar->name())
        M.ResultIndex = static_cast<int>(B);
  if (M.ResultIndex < 0) {
    Diags.error(L->body()->loc(),
                "module body must name one of the array bindings");
    return std::nullopt;
  }

  // Inter-array DAG: a sibling name free in a binding's value is a read
  // of that array. Free names that are neither parameters nor siblings
  // are runtime inputs.
  std::map<std::string, unsigned> Index;
  for (unsigned B = 0; B != M.Bindings.size(); ++B)
    Index[M.Bindings[B].Name] = B;
  for (unsigned B = 0; B != M.Bindings.size(); ++B) {
    if (!Makes[B])
      continue;
    for (const std::string &Name : freeVars(Makes[B])) {
      if (Name == M.Bindings[B].Name || M.Params.count(Name))
        continue;
      auto It = Index.find(Name);
      if (It != Index.end()) {
        M.Bindings[B].Deps.push_back(It->second);
        M.Bindings[It->second].Consumers.push_back(B);
      } else if (std::find(M.InputNames.begin(), M.InputNames.end(), Name) ==
                 M.InputNames.end()) {
        M.InputNames.push_back(Name);
      }
    }
  }

  // Topological schedule (Kahn, smallest binding index first so the
  // order — and therefore the buffer plan — is deterministic).
  {
    std::vector<unsigned> Remaining(M.Bindings.size(), 0);
    std::set<unsigned> Ready;
    for (unsigned B = 0; B != M.Bindings.size(); ++B) {
      Remaining[B] = static_cast<unsigned>(M.Bindings[B].Deps.size());
      if (Remaining[B] == 0)
        Ready.insert(B);
    }
    while (!Ready.empty()) {
      unsigned B = *Ready.begin();
      Ready.erase(Ready.begin());
      M.TopoOrder.push_back(B);
      for (unsigned C : M.Bindings[B].Consumers)
        if (--Remaining[C] == 0)
          Ready.insert(C);
    }
    if (M.TopoOrder.size() != M.Bindings.size() && M.FallbackReason.empty()) {
      std::string Cyclic;
      for (unsigned B = 0; B != M.Bindings.size(); ++B)
        if (Remaining[B] != 0)
          Cyclic += (Cyclic.empty() ? "" : ", ") + M.Bindings[B].Name;
      M.FallbackReason = "inter-array dependence cycle among: " + Cyclic;
      Diags.warning(L->loc(), "module has an inter-array dependence cycle "
                              "(" + Cyclic + "); falling back to the lazy "
                              "interpreter");
    }
  }

  // Per-binding bounds first, so every compile sees all sibling extents
  // and can prove cross-array reads in bounds.
  std::map<std::string, ArrayDims> Extents;
  for (unsigned B = 0; B != M.Bindings.size(); ++B) {
    if (!Makes[B])
      continue;
    M.Bindings[B].Array.Name = M.Bindings[B].Name;
    M.Bindings[B].Array.Params = M.Params;
    if (!stages::arrayBoundsToDims(Ctx, Makes[B]->bounds(), M.Params,
                                   M.Bindings[B].Array.Dims))
      return std::nullopt;
    Extents[M.Bindings[B].Name] = M.Bindings[B].Array.Dims;
  }

  // Compile every binding through the shared stages, producers first.
  // Bindings outside the topological order (cycle participants) are
  // compiled too so the report still carries their analyses.
  std::vector<unsigned> CompileOrder = M.TopoOrder;
  for (unsigned B = 0; B != M.Bindings.size(); ++B)
    if (std::find(CompileOrder.begin(), CompileOrder.end(), B) ==
        CompileOrder.end())
      CompileOrder.push_back(B);
  for (unsigned B : CompileOrder) {
    if (!Makes[B])
      continue;
    HAC_TRACE_SPAN(BindingSpan, "module.binding");
    if (traceEnabled())
      TraceSink::get().annotate(M.Bindings[B].Name);
    stages::compileArrayBinding(Ctx, M.Bindings[B].Array, Makes[B], Extents);
    if (!M.Bindings[B].Array.Thunkless && M.FallbackReason.empty())
      M.FallbackReason = "binding '" + M.Bindings[B].Name +
                         "': " + M.Bindings[B].Array.FallbackReason;
  }

  M.Thunkless =
      M.FallbackReason.empty() && M.TopoOrder.size() == M.Bindings.size();
  if (M.Thunkless)
    M.Buffers = planBuffers(M.Bindings, M.TopoOrder, M.ResultIndex);
  if (traceEnabled())
    TraceSink::get().annotate(M.Thunkless
                                  ? "module thunkless"
                                  : "module fallback: " + M.FallbackReason);
  return M;
}

bool hac::looksLikeModule(const std::string &Source) {
  DiagnosticEngine Scratch;
  ExprPtr Ast = parseString(Source, Scratch);
  if (!Ast)
    return false;
  ParamEnv Params;
  std::vector<std::string> InputNames;
  const Expr *E = stages::stripOuterLets(Ast.get(), Params, InputNames);
  const auto *L = dyn_cast<LetExpr>(E);
  if (!L)
    return false;
  unsigned Arrays = 0;
  for (const LetBind &B : L->binds())
    if (isa<MakeArrayExpr>(B.Value.get()))
      ++Arrays;
  return Arrays >= 2;
}

std::string BufferPlan::str(const std::vector<ModuleBinding> &Bindings) const {
  std::ostringstream OS;
  OS << "buffer plan: " << Slot.size() << " arrays in " << numSlots()
     << " slots (" << Reused << " reused), peak " << PeakBytes
     << " B (no-reuse " << NoReusePeakBytes << " B)\n";
  for (unsigned B = 0; B != Slot.size(); ++B) {
    OS << "  " << Bindings[B].Name << " -> slot " << Slot[B] << " ("
       << BindingBytes[B] << " B), ";
    if (LastUse[B] >= Slot.size())
      OS << "result\n";
    else
      OS << "dead after position " << LastUse[B] << "\n";
  }
  return OS.str();
}

std::string CompiledModule::dumpDag() const {
  std::ostringstream OS;
  OS << "module: " << Bindings.size() << " arrays, result '"
     << Bindings[ResultIndex].Name << "'\n";
  for (const ModuleBinding &B : Bindings) {
    OS << "  " << B.Name;
    for (const auto &[Lo, Hi] : B.Array.Dims)
      OS << " [" << Lo << ".." << Hi << "]";
    OS << ": reads {" << joinNames(Bindings, B.Deps) << "}, read by {"
       << joinNames(Bindings, B.Consumers) << "}\n";
  }
  if (TopoOrder.size() == Bindings.size()) {
    OS << "topo order:";
    for (unsigned B : TopoOrder)
      OS << " " << Bindings[B].Name;
    OS << "\n";
  }
  if (Thunkless)
    OS << Buffers.str(Bindings);
  else
    OS << "interpreter fallback: " << FallbackReason << "\n";
  return OS.str();
}

std::string CompiledModule::report() const {
  std::ostringstream OS;
  OS << "=== module (" << Bindings.size() << " arrays) ===\n" << dumpDag();
  for (const ModuleBinding &B : Bindings)
    OS << B.Array.report();
  return OS.str();
}

bool hac::evaluateModule(
    const CompiledModule &M,
    const std::map<std::string, const DoubleArray *> &Inputs, Executor &Exec,
    DoubleArray &Out, std::string &Err, ModuleRunStats *Stats,
    bool ReuseBuffers) {
  HAC_TRACE_SPAN(RunSpan, "module.run");
  HAC_TRACE_COUNT("module.arrays", M.Bindings.size());
  if (Stats)
    Stats->Arrays = static_cast<unsigned>(M.Bindings.size());

  if (!M.Thunkless) {
    // Whole-module interpreter fallback: cycles and non-thunkless
    // bindings keep the reference semantics.
    Interpreter Interp;
    Interp.setFuel(500'000'000);
    DiagnosticEngine FallbackDiags;
    ValuePtr V = runThunked(M.Source, Inputs, Interp, FallbackDiags);
    if (V->isError()) {
      Err = V->str();
      return false;
    }
    auto Converted = interpArrayToDouble(Interp, V, Err);
    if (!Converted)
      return false;
    Out = std::move(*Converted);
    return true;
  }

  for (const std::string &Name : M.InputNames)
    if (!Inputs.count(Name)) {
      Err = "module input '" + Name + "' was not bound";
      return false;
    }
  // Bindings from an earlier module run point into that run's pool
  // storage, which is gone; start from a clean input environment.
  Exec.clearInputs();
  for (const auto &[Name, Array] : Inputs)
    Exec.bindInput(Name, Array);

  const unsigned N = static_cast<unsigned>(M.Bindings.size());
  const JitExecStats JitBefore = Exec.jitStats();
  BufferPool Pool(ReuseBuffers ? M.Buffers.numSlots() : N);
  for (unsigned P = 0; P != M.TopoOrder.size(); ++P) {
    unsigned B = M.TopoOrder[P];
    const CompiledArray &A = M.Bindings[B].Array;
    DoubleArray *Dst;
    if (static_cast<int>(B) == M.ResultIndex) {
      // The result writes straight into the caller's array, outside the
      // pool (its storage outlives the run).
      Out = DoubleArray(A.Dims);
      Pool.noteExternal(Out.size() * sizeof(double));
      Dst = &Out;
    } else {
      Dst = &Pool.acquire(ReuseBuffers ? M.Buffers.Slot[B] : B, A.Dims);
    }
    if (A.Plan.CheckCollisions || A.Plan.CheckEmpties)
      Dst->enableDefinedBits();
    {
      HAC_TRACE_SPAN(BindingSpan, "module.binding");
      if (traceEnabled())
        TraceSink::get().annotate(A.Name);
      if (!Exec.run(A.Plan, *Dst, Err)) {
        Err = "module binding '" + A.Name + "': " + Err;
        return false;
      }
    }
    // Later bindings read this array as a plain runtime input.
    Exec.bindInput(A.Name, Dst);
  }

  HAC_TRACE_COUNT("module.buffers_reused", Pool.reuses());
  if (traceEnabled())
    TraceSink::get().countMax("module.peak_bytes", Pool.peakBytes());
  if (Stats) {
    Stats->BuffersReused = Pool.reuses();
    Stats->PeakBytes = Pool.peakBytes();
    Stats->NoReusePeakBytes = M.Buffers.NoReusePeakBytes;
    const JitExecStats &JitAfter = Exec.jitStats();
    Stats->JitNativeRuns = JitAfter.NativeRuns - JitBefore.NativeRuns;
    Stats->JitInterpRuns = JitAfter.InterpRuns - JitBefore.InterpRuns;
    Stats->JitTierSwaps = JitAfter.TierSwaps - JitBefore.TierSwaps;
  }
  return true;
}
