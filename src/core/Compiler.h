//===- core/Compiler.h - The end-to-end compilation driver ------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public one-call API: compile an array-comprehension program through
/// the full pipeline (parse -> clause tree -> subscript analysis ->
/// dependence graph -> collision/coverage analyses -> static scheduling
/// [-> node splitting] -> executable plan), and run it thunklessly. The
/// lazy interpreter remains the semantic reference and the fallback for
/// programs the static pipeline cannot handle.
///
/// Two program shapes are supported:
///
///  * Array construction (`compileArray`):
///    \code
///      let n = 100 in
///      letrec* a = array ((1,1),(n,n)) ( ... s/v list ... ) in a
///    \endcode
///    Outer `let`s binding compile-time integers become parameters; outer
///    `let`s binding anything else name *input arrays* supplied to the
///    Executor at run time.
///
///  * In-place update (`compileUpdate`):
///    \code
///      let n = 100 in bigupd a ( ... s/v list ... )
///    \endcode
///    `a` is the array updated in place at run time.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CORE_COMPILER_H
#define HAC_CORE_COMPILER_H

#include "analysis/ArrayChecks.h"
#include "analysis/DepGraph.h"
#include "codegen/ExecPlan.h"
#include "schedule/Vectorize.h"
#include "comp/CompNest.h"
#include "runtime/Executor.h"
#include "schedule/Scheduler.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hac {

/// Knobs for the compilation pipeline (the ablation benchmarks toggle
/// these).
struct CompileOptions {
  /// Compile-time integer parameters (merged with constant outer `let`s).
  ParamEnv Params;
  /// Node budget for exact dependence tests (0 disables exact screening).
  uint64_t ExactBudget = 100'000;
  /// Step budget for the Omega (exact Presburger) dependence tier; 0
  /// disables it. Defaults to the HAC_DEP_BUDGET environment knob.
  uint64_t OmegaBudget = omega::depBudgetFromEnv();
  /// Cross-check every Omega verdict against brute-force enumeration
  /// (`hacc -Xdep-selfcheck`); aborts on a mismatch.
  bool DepSelfCheck = false;
  /// When false, all runtime checks stay on even if the analyses prove
  /// them unnecessary (ablation of Sections 4 and 7).
  bool EnableCheckElimination = true;
  /// When true, compiled reads of the target verify the element was
  /// already computed (schedule-safety validation for property tests).
  bool ValidateReads = false;
  /// When true, every compiled plan is re-lowered to LIR and checked by
  /// the abstract interpreter (translation validation of dropped checks,
  /// HAC009; static race checking of par-flagged loops, HAC010/HAC011)
  /// at \p VerifyLIRThreads workers. Findings surface through the
  /// compiler's DiagnosticEngine. Off by default — `hacc -analyze` and
  /// `-verify-lir` turn it on.
  bool VerifyLIR = false;
  unsigned VerifyLIRThreads = 1;
};

/// Everything the pipeline derived about one array construction.
struct CompiledArray {
  std::string Name;
  ArrayDims Dims;
  ParamEnv Params;
  /// Names of outer non-constant bindings: expected runtime inputs.
  std::vector<std::string> InputNames;

  ExprPtr Ast; ///< the parsed program (kept for tooling)
  CompNest Nest;
  DepGraph Graph;
  CollisionAnalysis Collisions;
  CoverageAnalysis Coverage;
  /// Symbolic interval analysis of every array read against statically
  /// known extents (the target and, for storage reuse, its alias). A
  /// Proven outcome lets the Executor elide per-read bounds checks.
  ReadBoundsAnalysis ReadBounds;
  Schedule Sched;
  /// Section 10: which innermost loop passes are vectorizable.
  VectorizationReport Vectorization;

  bool Thunkless = false;
  std::string FallbackReason;
  ExecPlan Plan; ///< valid only when Thunkless

  /// Set by compileAccum: the target is an accumulated array whose
  /// untouched elements hold this initial value (pre-filled at run time).
  bool IsAccum = false;
  double AccumInit = 0.0;

  /// Set by compileArrayInPlace: the construction overwrites the storage
  /// of this input array (Section 9's storage-reuse case).
  std::string ReuseName;
  UpdateSchedule InPlaceSched; ///< schedule + splits for the reuse case

  /// Runs the compiled plan into \p Out (sized from Dims automatically).
  /// Input arrays must have been bound on \p Exec.
  bool evaluate(DoubleArray &Out, Executor &Exec, std::string &Err) const;

  /// For in-place constructions: builds the result directly into
  /// \p Target, which holds the old contents of the reused input array.
  bool evaluateInPlace(DoubleArray &Target, Executor &Exec,
                       std::string &Err) const;

  /// Multi-line analysis report (what was proven, what was eliminated).
  std::string report() const;
};

/// Everything the pipeline derived about one in-place update.
struct CompiledUpdate {
  std::string BaseName;
  ParamEnv Params;

  ExprPtr Ast;
  CompNest Nest;
  DepGraph Graph;
  /// Read analysis for the verifier; the updated array's extents are
  /// runtime values, so reads are at best Unknown here.
  ReadBoundsAnalysis ReadBounds;
  UpdateSchedule Update;
  /// Section 10: which innermost loop passes are vectorizable.
  VectorizationReport Vectorization;

  bool InPlace = false;
  std::string FallbackReason;
  ExecPlan Plan; ///< valid only when InPlace

  /// Applies the update to \p Target in place.
  bool evaluateInPlace(DoubleArray &Target, Executor &Exec,
                       std::string &Err) const;

  std::string report() const;
};

/// The pipeline driver.
class Compiler {
public:
  explicit Compiler(CompileOptions Options = CompileOptions());

  DiagnosticEngine &diags() { return Diags; }
  const CompileOptions &options() const { return Options; }

  /// Compiles an array-construction program; nullopt on a syntax or
  /// structural error (diagnostics explain). A result with
  /// Thunkless == false still carries the full analysis (and the caller
  /// falls back to the interpreter for evaluation).
  std::optional<CompiledArray> compileArray(const std::string &Source);

  /// Compiles a `bigupd` program.
  std::optional<CompiledUpdate> compileUpdate(const std::string &Source);

  /// Compiles `letrec* a = accumArray f z bounds svlist in a` — the
  /// paper's "interesting direction for further work" (Section 3). When
  /// the collision analysis proves each element receives at most one
  /// pair, the accumulation degenerates to a plain monolithic array whose
  /// values are `f z v` with untouched elements pre-filled to z, and the
  /// standard thunkless pipeline applies. With possible collisions the
  /// combining order matters and the result falls back to the
  /// interpreter.
  std::optional<CompiledArray> compileAccum(const std::string &Source);

  /// Compiles an array construction whose result *overwrites the storage*
  /// of input array \p ReuseName (Section 9, storage reuse: "the result
  /// array completely changes the input array, but the result can
  /// overwrite the input in place"). Antidependences on \p ReuseName join
  /// the flow dependences as scheduling constraints; anti cycles are
  /// broken by node splitting.
  std::optional<CompiledArray>
  compileArrayInPlace(const std::string &Source,
                      const std::string &ReuseName);

private:
  CompileOptions Options;
  DiagnosticEngine Diags;
};

} // namespace hac

#endif // HAC_CORE_COMPILER_H
