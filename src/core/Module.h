//===- core/Module.h - Multi-array module compilation -----------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program compilation of modules: programs whose `letrec*` binds
/// several arrays feeding each other, the shape of the paper's intended
/// scientific workloads (smooth-then-residual, staged relaxation):
///
/// \code
///   let n = 100 in
///   letrec* a = array (1,n) [ ... ];
///           b = array (1,n) [ i := a!i ... | ... ];
///           c = array (1,n) [ i := a!i + b!i | ... ]
///   in c
/// \endcode
///
/// The ModuleCompiler builds the inter-array producer->consumer DAG,
/// topologically schedules it (a cycle falls back to the lazy
/// interpreter, which such programs need anyway), compiles each binding
/// through the shared pipeline stages with its siblings' extents known
/// (so cross-array reads are provable), and runs a buffer planner:
/// last-use liveness over the topological order assigns bindings to
/// storage slots so a dead intermediate's buffer is recycled for a later
/// array instead of staying allocated to the end of the run.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CORE_MODULE_H
#define HAC_CORE_MODULE_H

#include "core/Compiler.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hac {

/// One `NAME = array BOUNDS SVLIST` binding of a module, with its edges
/// in the inter-array DAG (indices into CompiledModule::Bindings).
struct ModuleBinding {
  std::string Name;
  CompiledArray Array;
  std::vector<unsigned> Deps;      ///< sibling arrays this one reads
  std::vector<unsigned> Consumers; ///< sibling arrays reading this one
};

/// The static storage plan: which slot each binding writes, derived from
/// last-use liveness over the topological order.
struct BufferPlan {
  std::vector<unsigned> Slot;        ///< binding index -> slot
  std::vector<size_t> BindingBytes;  ///< binding index -> logical bytes
  std::vector<size_t> SlotBytes;     ///< slot -> max bytes over occupants
  /// Topological position after which each binding's storage is dead
  /// (its own position when nothing reads it; the number of bindings for
  /// the result, which is never recycled).
  std::vector<unsigned> LastUse;
  size_t PeakBytes = 0;        ///< sum of SlotBytes: the planned footprint
  size_t NoReusePeakBytes = 0; ///< sum of BindingBytes: the one-buffer-per-
                               ///< array footprint the plan is measured against
  unsigned Reused = 0;         ///< bindings recycling an earlier slot

  unsigned numSlots() const { return static_cast<unsigned>(SlotBytes.size()); }
  std::string str(const std::vector<ModuleBinding> &Bindings) const;
};

/// Everything the pipeline derived about one module.
struct CompiledModule {
  std::string Source; ///< kept for the interpreter fallback
  ExprPtr Ast;
  ParamEnv Params;
  /// Names of outer non-constant bindings and free array names no sibling
  /// defines: expected runtime inputs.
  std::vector<std::string> InputNames;

  std::vector<ModuleBinding> Bindings;
  int ResultIndex = -1;            ///< binding the module body names
  std::vector<unsigned> TopoOrder; ///< producer-before-consumer schedule
  BufferPlan Buffers;              ///< valid only when Thunkless

  /// True when the DAG is acyclic and every binding compiled thunklessly;
  /// otherwise the whole module evaluates under the lazy interpreter.
  bool Thunkless = false;
  std::string FallbackReason;

  const ModuleBinding &result() const { return Bindings[ResultIndex]; }

  /// Module-level analysis report followed by every binding's report.
  std::string report() const;

  /// The inter-array DAG, topological schedule, and buffer plan (the
  /// `hacc -dump-module` payload).
  std::string dumpDag() const;
};

/// Compiles whole multi-array programs; shares the staged pipeline with
/// Compiler and adds the inter-array DAG and buffer planning on top.
class ModuleCompiler {
public:
  explicit ModuleCompiler(CompileOptions Options = CompileOptions());

  DiagnosticEngine &diags() { return Diags; }
  const CompileOptions &options() const { return Options; }

  /// Compiles a module; nullopt on a syntax or structural error
  /// (diagnostics explain). A result with Thunkless == false still
  /// carries the DAG and per-binding analyses, and evaluateModule runs
  /// it under the interpreter.
  std::optional<CompiledModule> compileModule(const std::string &Source);

private:
  CompileOptions Options;
  DiagnosticEngine Diags;
};

/// True when \p Source parses and its target letrec binds two or more
/// arrays — the hacc driver routes such programs to the ModuleCompiler.
bool looksLikeModule(const std::string &Source);

/// What one module run did (mirrored onto the trace counters
/// `module.arrays`, `module.buffers_reused`, `module.peak_bytes`).
struct ModuleRunStats {
  unsigned Arrays = 0;
  unsigned BuffersReused = 0;
  size_t PeakBytes = 0;
  size_t NoReusePeakBytes = 0;
  /// Tiered-execution deltas for this run: how many binding executions
  /// ran as JIT-compiled kernels vs the LIR evaluator (zeros when the
  /// executor's JIT mode is off).
  uint64_t JitNativeRuns = 0;
  uint64_t JitInterpRuns = 0;
  uint64_t JitTierSwaps = 0;
};

/// Runs \p M: thunkless modules execute binding-by-binding in
/// topological order on \p Exec (which must carry M.Params), recycling
/// dead intermediate storage per the buffer plan; fallback modules run
/// under the lazy interpreter. \p Inputs supplies M.InputNames. The
/// result lands in \p Out. \p ReuseBuffers = false is the
/// one-buffer-per-array foil the bench and tests compare against.
bool evaluateModule(const CompiledModule &M,
                    const std::map<std::string, const DoubleArray *> &Inputs,
                    Executor &Exec, DoubleArray &Out, std::string &Err,
                    ModuleRunStats *Stats = nullptr,
                    bool ReuseBuffers = true);

} // namespace hac

#endif // HAC_CORE_MODULE_H
