//===- core/InterpBridge.cpp - Interpreter <-> runtime bridge -------------===//

#include "core/InterpBridge.h"

#include "frontend/Parser.h"
#include "support/Casting.h"
#include "support/Trace.h"

using namespace hac;

std::optional<DoubleArray> hac::interpArrayToDouble(Interpreter &Interp,
                                                    const ValuePtr &V,
                                                    std::string &Err) {
  if (V->isError()) {
    Err = cast<ErrorValue>(V.get())->message();
    return std::nullopt;
  }
  const auto *A = dyn_cast<ArrayValue>(V.get());
  if (!A) {
    Err = "value is not an array";
    return std::nullopt;
  }
  DoubleArray::Dims Dims(A->dims().begin(), A->dims().end());
  DoubleArray Out(Dims);
  for (size_t I = 0; I != A->size(); ++I) {
    ValuePtr EV = Interp.force(A->elemThunk(I));
    if (EV->isError()) {
      Err = cast<ErrorValue>(EV.get())->message();
      return std::nullopt;
    }
    if (const auto *IV = dyn_cast<IntValue>(EV.get()))
      Out[I] = static_cast<double>(IV->value());
    else if (const auto *FV = dyn_cast<FloatValue>(EV.get()))
      Out[I] = FV->value();
    else {
      Err = "array element is not numeric";
      return std::nullopt;
    }
  }
  return Out;
}

ValuePtr hac::doubleToInterpArray(const DoubleArray &A) {
  ArrayValue::Bounds Dims(A.dims().begin(), A.dims().end());
  std::vector<ThunkPtr> Elems;
  Elems.reserve(A.size());
  for (size_t I = 0; I != A.size(); ++I)
    Elems.push_back(makeValueThunk(makeFloatValue(A[I])));
  return std::make_shared<ArrayValue>(std::move(Dims), std::move(Elems));
}

ValuePtr hac::runThunked(
    const std::string &Source,
    const std::map<std::string, const DoubleArray *> &Inputs,
    Interpreter &Interp, DiagnosticEngine &Diags) {
  TraceSpan Span("interp");
  InterpStats Before = Interp.stats();
  ExprPtr Ast = parseString(Source, Diags);
  if (!Ast)
    return makeErrorValue("parse error: " + Diags.str());

  EnvPtr Global = Interp.makeGlobalEnv();
  for (const auto &[Name, Array] : Inputs)
    Global->bind(Name, makeValueThunk(doubleToInterpArray(*Array)));

  // The AST must stay alive while thunks reference it; deep-force now and
  // drop laziness before it goes away.
  ValuePtr Result = Interp.eval(Ast.get(), Global);
  if (Result->isError())
    return Result;
  ValuePtr Forced = Interp.deepForce(Result);
  Interp.foldStatsIntoTrace(Before);
  if (Forced->isError())
    return Forced;
  return Result;
}
