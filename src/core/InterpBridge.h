//===- core/InterpBridge.h - Interpreter <-> runtime bridge -----*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the lazy reference interpreter (the thunked baseline) and
/// the flat runtime arrays: run a source program under the interpreter,
/// force it, and convert array values to DoubleArray for differential
/// comparison with compiled execution; and inject DoubleArrays as
/// pre-forced interpreter arrays for programs with array inputs.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CORE_INTERPBRIDGE_H
#define HAC_CORE_INTERPBRIDGE_H

#include "interp/Interp.h"
#include "runtime/DoubleArray.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string>

namespace hac {

/// Converts a fully forceable interpreter array into a DoubleArray.
/// Returns nullopt (with \p Err set) when the value is not an array, an
/// element is an error, or an element is not numeric.
std::optional<DoubleArray> interpArrayToDouble(Interpreter &Interp,
                                               const ValuePtr &V,
                                               std::string &Err);

/// Builds a fully evaluated interpreter array value from a DoubleArray.
ValuePtr doubleToInterpArray(const DoubleArray &A);

/// Parses and evaluates \p Source under the lazy interpreter with the
/// given array inputs bound as global names, forcing the result deeply.
/// Returns the result value (which may be an ErrorValue).
ValuePtr runThunked(const std::string &Source,
                    const std::map<std::string, const DoubleArray *> &Inputs,
                    Interpreter &Interp, DiagnosticEngine &Diags);

} // namespace hac

#endif // HAC_CORE_INTERPBRIDGE_H
