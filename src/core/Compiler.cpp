//===- core/Compiler.cpp - The end-to-end compilation driver --------------===//
//
// Each entry point here is a thin wrapper: locate the program shape it
// accepts (array construction, bigupd, accumArray, storage reuse), then
// drive the shared stages in core/PipelineStages.h. All cross-cutting
// wiring (trace spans, options, diagnostics, parallel classification,
// LIR translation validation) lives in the stages, once.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "ast/ASTUtils.h"
#include "core/PipelineStages.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <sstream>

using namespace hac;

Compiler::Compiler(CompileOptions Options) : Options(std::move(Options)) {}

std::optional<CompiledArray>
Compiler::compileArray(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=array");
  stages::StageContext Ctx{Options, Diags};
  ExprPtr Ast = stages::parse(Ctx, Source);
  if (!Ast)
    return std::nullopt;

  CompiledArray Result;
  Result.Params = Options.Params;
  const Expr *E =
      stages::stripOuterLets(Ast.get(), Result.Params, Result.InputNames);

  // Locate the defining binding: letrec/letrec*/let NAME = array ... .
  const MakeArrayExpr *Make = nullptr;
  if (const auto *L = dyn_cast<LetExpr>(E)) {
    for (const LetBind &B : L->binds()) {
      if (const auto *M = dyn_cast<MakeArrayExpr>(B.Value.get())) {
        Result.Name = B.Name;
        Make = M;
        break;
      }
    }
  } else if (const auto *M = dyn_cast<MakeArrayExpr>(E)) {
    // A bare array expression: anonymous target.
    Result.Name = "a";
    Make = M;
  }
  if (!Make) {
    Diags.error(E->loc(), "program does not define an array "
                          "(expected `letrec* NAME = array BOUNDS LIST`)");
    return std::nullopt;
  }

  if (!stages::arrayBoundsToDims(Ctx, Make->bounds(), Result.Params,
                                 Result.Dims))
    return std::nullopt;

  Result.Ast = std::move(Ast);
  stages::compileArrayBinding(Ctx, Result, Make);
  return Result;
}

std::optional<CompiledUpdate>
Compiler::compileUpdate(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=update");
  stages::StageContext Ctx{Options, Diags};
  ExprPtr Ast = stages::parse(Ctx, Source);
  if (!Ast)
    return std::nullopt;

  CompiledUpdate Result;
  Result.Params = Options.Params;
  std::vector<std::string> InputNames;
  const Expr *E = stages::stripOuterLets(Ast.get(), Result.Params, InputNames);

  const BigUpdExpr *Upd = dyn_cast<BigUpdExpr>(E);
  if (!Upd) {
    // Allow `let b = bigupd a ... in b` shape.
    if (const auto *L = dyn_cast<LetExpr>(E))
      for (const LetBind &B : L->binds())
        if ((Upd = dyn_cast<BigUpdExpr>(B.Value.get())))
          break;
  }
  if (!Upd) {
    Diags.error(E->loc(), "program does not contain a bigupd");
    return std::nullopt;
  }
  const auto *Base = dyn_cast<VarExpr>(Upd->base());
  if (!Base) {
    Diags.error(Upd->base()->loc(), "bigupd base must be an array name");
    return std::nullopt;
  }
  Result.BaseName = Base->name();

  Result.Ast = std::move(Ast);
  Result.Nest = stages::nest(Ctx, Upd->svList(), Result.Params);
  if (!Result.Nest.Analyzable) {
    stages::fallback(Result, Result.Nest.FallbackReason);
    return Result;
  }
  // The updated array's extents are runtime values: reads can be
  // enumerated for the verifier but never proven in bounds here.
  Result.ReadBounds = analyzeReadBounds(Result.Nest, {}, Result.Params);

  Result.Graph = stages::dependence(Ctx, Result.Nest, Result.BaseName,
                                    Result.Params, DepGraphMode::Update);
  Result.Update = scheduleUpdate(Result.Nest, Result.Graph);
  if (!Result.Update.InPlace) {
    stages::fallback(Result, Result.Update.Reason);
    return Result;
  }
  // Vectorization and the parallel planner are judged against the
  // surviving (post-split) edges.
  std::vector<const DepEdge *> Remaining =
      stages::edgesAfterSplits(Result.Graph.Edges, Result.Update.Splits);
  Result.Vectorization = analyzeVectorization(Result.Update.Sched, Remaining);

  Result.InPlace = true;
  stages::planAndFinish(
      Ctx, Result.Plan,
      [&] {
        return buildUpdatePlan(Result.Nest, Result.Update, Result.BaseName,
                               /*Dims=*/{});
      },
      Remaining, /*Dims=*/{}, Result.Params);
  return Result;
}

namespace {

/// Rewrites every s/v pair value `v` in \p SvList into the combining
/// expression `f z v` with the lambda inlined: body[p0 := z, p1 := v].
ExprPtr transformAccumValues(const Expr *SvList, const LambdaExpr *Fn,
                             const Expr *Init) {
  switch (SvList->kind()) {
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(SvList);
    if (B->op() != BinaryOpKind::Append)
      break;
    return makeBinary(BinaryOpKind::Append,
                      transformAccumValues(B->lhs(), Fn, Init),
                      transformAccumValues(B->rhs(), Fn, Init));
  }
  case ExprKind::List: {
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : cast<ListExpr>(SvList)->elems())
      Elems.push_back(transformAccumValues(Elem.get(), Fn, Init));
    return std::make_unique<ListExpr>(std::move(Elems), SvList->loc());
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(SvList);
    std::vector<LetBind> Binds;
    for (const LetBind &B : L->binds())
      Binds.emplace_back(B.Name, cloneExpr(B.Value.get()), B.Loc);
    return std::make_unique<LetExpr>(
        L->letKind(), std::move(Binds),
        transformAccumValues(L->body(), Fn, Init), SvList->loc());
  }
  case ExprKind::Comp: {
    const auto *C = cast<CompExpr>(SvList);
    // Clone the whole comprehension to obtain owned qualifier copies,
    // then rebuild it around the transformed head.
    ExprPtr Scratch = cloneExpr(SvList);
    std::vector<CompQual> Quals =
        std::move(cast<CompExpr>(Scratch.get())->quals());
    return std::make_unique<CompExpr>(
        transformAccumValues(C->head(), Fn, Init), std::move(Quals),
        C->isNested(), C->loc());
  }
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(SvList);
    // body[p0 := z] first (z is a literal, no capture possible), then
    // [p1 := v].
    ExprPtr Step1 =
        substitute(Fn->body(), Fn->params()[0], Init);
    ExprPtr NewValue =
        substitute(Step1.get(), Fn->params()[1], P->value());
    return std::make_unique<SvPairExpr>(cloneExpr(P->subscript()),
                                        std::move(NewValue), P->loc());
  }
  default:
    break;
  }
  return cloneExpr(SvList);
}

} // namespace

std::optional<CompiledArray>
Compiler::compileAccum(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=accum");
  stages::StageContext Ctx{Options, Diags};
  ExprPtr Ast = stages::parse(Ctx, Source);
  if (!Ast)
    return std::nullopt;

  CompiledArray Result;
  Result.Params = Options.Params;
  const Expr *E =
      stages::stripOuterLets(Ast.get(), Result.Params, Result.InputNames);

  const AccumArrayExpr *Accum = nullptr;
  if (const auto *L = dyn_cast<LetExpr>(E)) {
    for (const LetBind &B : L->binds())
      if (const auto *A = dyn_cast<AccumArrayExpr>(B.Value.get())) {
        Result.Name = B.Name;
        Accum = A;
        break;
      }
  } else if (const auto *A = dyn_cast<AccumArrayExpr>(E)) {
    Result.Name = "a";
    Accum = A;
  }
  if (!Accum) {
    Diags.error(E->loc(), "program does not define an accumulated array");
    return std::nullopt;
  }

  if (!stages::arrayBoundsToDims(Ctx, Accum->bounds(), Result.Params,
                                 Result.Dims))
    return std::nullopt;
  Result.Ast = std::move(Ast);
  Result.IsAccum = true;

  // The static special case needs a two-parameter lambda and a constant
  // initial value.
  const auto *Fn = dyn_cast<LambdaExpr>(Accum->fn());
  if (!Fn || Fn->params().size() != 2) {
    stages::fallback(
        Result, "accumArray combining function is not a two-parameter lambda");
    return Result;
  }
  double InitValue = 0;
  if (const auto *IL = dyn_cast<IntLitExpr>(Accum->init()))
    InitValue = static_cast<double>(IL->value());
  else if (const auto *FL = dyn_cast<FloatLitExpr>(Accum->init()))
    InitValue = FL->value();
  else {
    int64_t IV;
    if (!tryEvalConstInt(Accum->init(), Result.Params, IV)) {
      stages::fallback(
          Result, "accumArray initial value is not a compile-time constant");
      return Result;
    }
    InitValue = static_cast<double>(IV);
  }
  Result.AccumInit = InitValue;

  // Inline the combining function into every pair value.
  ExprPtr Transformed =
      transformAccumValues(Accum->svList(), Fn, Accum->init());
  Result.Nest = stages::nest(Ctx, Transformed.get(), Result.Params);
  if (!Result.Nest.Analyzable) {
    stages::fallback(Result, Result.Nest.FallbackReason);
    return Result;
  }

  Result.Graph = stages::dependence(Ctx, Result.Nest, Result.Name,
                                    Result.Params, DepGraphMode::Monolithic);
  if (Result.Graph.HasUnknownRef ||
      !Result.Graph.edgesOfKind(DepKind::Flow).empty()) {
    stages::fallback(Result, "self-referencing accumulated arrays read "
                             "partially combined values; falling back");
    return Result;
  }

  // Soundness gate: the combining order is unobservable only when no
  // element receives more than one pair.
  stages::arrayAnalyses(Ctx, Result);
  if (Result.Collisions.NoCollisions != CheckOutcome::Proven) {
    stages::fallback(Result,
                     "possible multiple pairs per element: combining order "
                     "must be preserved (interpreter fallback)");
    return Result;
  }

  if (!stages::scheduleArray(Ctx, Result, {}))
    return Result;

  Result.Thunkless = true;
  CoverageAnalysis EffCoverage = Result.Coverage;
  // Untouched elements are the initial value, never "empties".
  EffCoverage.NoEmpties = CheckOutcome::Proven;
  // The gates above proved there are no flow edges and no collisions:
  // every loop of an accumulated array is trivially independent.
  stages::planAndFinish(
      Ctx, Result.Plan,
      [&] {
        return buildArrayPlan(Result.Nest, Result.Sched, Result.Name,
                              Result.Dims, Result.Collisions, EffCoverage,
                              Result.ReadBounds);
      },
      {}, Result.Dims, Result.Params);
  return Result;
}

std::optional<CompiledArray>
Compiler::compileArrayInPlace(const std::string &Source,
                              const std::string &ReuseName) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=array-in-place reuse=" + ReuseName);
  stages::StageContext Ctx{Options, Diags};
  auto Result = compileArray(Source);
  if (!Result)
    return std::nullopt;
  Result->ReuseName = ReuseName;
  if (!Result->Nest.Analyzable || Result->Graph.HasUnknownRef ||
      Result->Collisions.NoCollisions == CheckOutcome::Disproven) {
    stages::fallback(*Result, Result->FallbackReason);
    return Result;
  }

  // Antidependences on the reused input join the flow dependences.
  DepGraph AntiGraph = stages::dependence(Ctx, Result->Nest, ReuseName,
                                          Result->Params, DepGraphMode::Update);
  if (AntiGraph.HasUnknownRef) {
    stages::fallback(*Result, AntiGraph.UnknownRefReason);
    return Result;
  }
  DepGraph Combined;
  Combined.NumClauses = Result->Graph.NumClauses;
  for (const DepEdge &E : Result->Graph.Edges)
    if (E.Kind == DepKind::Flow)
      Combined.Edges.push_back(E);
  for (const DepEdge &E : AntiGraph.Edges)
    Combined.Edges.push_back(E);

  Result->InPlaceSched = scheduleUpdate(Result->Nest, Combined);
  // FailingEdges point into the local Combined graph; never expose them.
  Result->InPlaceSched.Sched.FailingEdges.clear();
  if (!Result->InPlaceSched.InPlace) {
    stages::fallback(*Result, Result->InPlaceSched.Reason);
    return Result;
  }

  Result->Thunkless = true;
  std::vector<const DepEdge *> Remaining =
      stages::edgesAfterSplits(Combined.Edges, Result->InPlaceSched.Splits);
  Result->Vectorization =
      analyzeVectorization(Result->InPlaceSched.Sched, Remaining);
  // With storage reuse the alias shares the target's extents, so its
  // reads become provable too.
  Result->ReadBounds = analyzeReadBounds(
      Result->Nest,
      {{Result->Name, Result->Dims}, {ReuseName, Result->Dims}},
      Result->Params);
  CollisionAnalysis EffCollisions = Result->Collisions;
  CoverageAnalysis EffCoverage = Result->Coverage;
  ReadBoundsAnalysis EffReadBounds = Result->ReadBounds;
  stages::maskUnprovenChecks(Ctx, EffCollisions, EffCoverage, EffReadBounds);
  stages::planAndFinish(
      Ctx, Result->Plan,
      [&] {
        return buildInPlaceArrayPlan(Result->Nest, Result->InPlaceSched,
                                     Result->Name, ReuseName, Result->Dims,
                                     EffCollisions, EffCoverage,
                                     EffReadBounds);
      },
      Remaining, Result->Dims, Result->Params);
  Result->Sched = Result->InPlaceSched.Sched;
  return Result;
}

bool CompiledArray::evaluate(DoubleArray &Out, Executor &Exec,
                             std::string &Err) const {
  if (!Thunkless) {
    Err = "array was not compiled thunklessly: " + FallbackReason;
    return false;
  }
  Out = DoubleArray(Dims);
  if (IsAccum) {
    HAC_TRACE_SPAN(PrefillSpan, "accum.prefill");
    for (size_t I = 0; I != Out.size(); ++I)
      Out[I] = AccumInit;
  }
  if (Plan.CheckCollisions || Plan.CheckEmpties)
    Out.enableDefinedBits();
  return Exec.run(Plan, Out, Err);
}

bool CompiledArray::evaluateInPlace(DoubleArray &Target, Executor &Exec,
                                    std::string &Err) const {
  if (!Thunkless || ReuseName.empty()) {
    Err = "array was not compiled for in-place reuse: " + FallbackReason;
    return false;
  }
  if (Target.dims() != Dims) {
    Err = "in-place target has the wrong shape";
    return false;
  }
  if (Plan.CheckCollisions || Plan.CheckEmpties)
    Target.enableDefinedBits();
  return Exec.run(Plan, Target, Err);
}

bool CompiledUpdate::evaluateInPlace(DoubleArray &Target, Executor &Exec,
                                     std::string &Err) const {
  if (!InPlace) {
    Err = "update was not compiled in place: " + FallbackReason;
    return false;
  }
  return Exec.run(Plan, Target, Err);
}

std::string CompiledArray::report() const {
  std::ostringstream OS;
  OS << "=== array '" << Name << "'";
  for (const auto &[Lo, Hi] : Dims)
    OS << " [" << Lo << ".." << Hi << "]";
  OS << " ===\n";
  if (!Nest.Analyzable) {
    OS << "not analyzable: " << Nest.FallbackReason << "\n";
    return OS.str();
  }
  OS << "clauses: " << Nest.numClauses() << ", loops: " << Nest.Loops.size()
     << "\n";
  OS << "dependence graph:\n" << Graph.str();
  OS << "collisions: " << checkOutcomeName(Collisions.NoCollisions);
  if (Collisions.Witness)
    OS << " (" << Collisions.witnessStr() << ")";
  OS << "\n";
  OS << "in-bounds: " << checkOutcomeName(Coverage.InBounds)
     << ", empties: " << checkOutcomeName(Coverage.NoEmpties)
     << " (instances " << Coverage.TotalInstances << " / size "
     << Coverage.ArraySize << ")\n";
  OS << "read-bounds: " << checkOutcomeName(ReadBounds.AllInBounds) << " ("
     << ReadBounds.numProven() << "/" << ReadBounds.Reads.size()
     << " reads proven)\n";
  if (Thunkless) {
    OS << "schedule (thunkless, " << Sched.PassCount << " passes):\n"
       << Sched.str();
    OS << "runtime checks: bounds="
       << (Plan.CheckStoreBounds ? "on" : "off")
       << " collisions=" << (Plan.CheckCollisions ? "on" : "off")
       << " empties=" << (Plan.CheckEmpties ? "on" : "off")
       << " reads=" << (Plan.CheckReadBounds ? "on" : "off") << "\n";
    OS << Vectorization.str();
  } else {
    OS << "thunked fallback: " << FallbackReason << "\n";
  }
  return OS.str();
}

std::string CompiledUpdate::report() const {
  std::ostringstream OS;
  OS << "=== bigupd '" << BaseName << "' ===\n";
  if (!Nest.Analyzable) {
    OS << "not analyzable: " << Nest.FallbackReason << "\n";
    return OS.str();
  }
  OS << "clauses: " << Nest.numClauses() << "\n";
  OS << "dependence graph:\n" << Graph.str();
  if (InPlace) {
    OS << "in place (splits: " << Update.Splits.size()
       << ", extra copies: " << Update.splitCopyCost() << ")\n";
    for (const SplitAction &A : Update.Splits)
      OS << "  " << A.str() << "\n";
    OS << "schedule:\n" << Update.Sched.str();
    OS << Vectorization.str();
  } else {
    OS << "copying fallback: " << FallbackReason << "\n";
  }
  return OS.str();
}
