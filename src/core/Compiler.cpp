//===- core/Compiler.cpp - The end-to-end compilation driver --------------===//

#include "core/Compiler.h"

#include "ast/ASTUtils.h"
#include "codegen/ShapeEstimate.h"
#include "frontend/Parser.h"
#include "lir/LIRAbsint.h"
#include "parallel/ParPlanner.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <set>
#include <sstream>

using namespace hac;

Compiler::Compiler(CompileOptions Options) : Options(std::move(Options)) {}

namespace {

/// Parses the bounds argument of `array` into concrete dimensions given
/// the parameter environment. Accepts (lo,hi) and ((l1..),(h1..)).
bool boundsToDims(const Expr *Bounds, const ParamEnv &Params, ArrayDims &Out,
                  DiagnosticEngine &Diags) {
  const auto *T = dyn_cast<TupleExpr>(Bounds);
  if (!T || T->size() != 2) {
    Diags.error(Bounds->loc(), "array bounds must be a pair");
    return false;
  }
  int64_t Lo, Hi;
  if (tryEvalConstInt(T->elem(0), Params, Lo) &&
      tryEvalConstInt(T->elem(1), Params, Hi)) {
    Out.emplace_back(Lo, Hi);
    return true;
  }
  const auto *LoT = dyn_cast<TupleExpr>(T->elem(0));
  const auto *HiT = dyn_cast<TupleExpr>(T->elem(1));
  if (!LoT || !HiT || LoT->size() != HiT->size()) {
    Diags.error(Bounds->loc(),
                "array bounds are not compile-time constants");
    return false;
  }
  for (unsigned D = 0; D != LoT->size(); ++D) {
    if (!tryEvalConstInt(LoT->elem(D), Params, Lo) ||
        !tryEvalConstInt(HiT->elem(D), Params, Hi)) {
      Diags.error(Bounds->loc(),
                  "array bound is not a compile-time constant");
      return false;
    }
    Out.emplace_back(Lo, Hi);
  }
  return true;
}

/// Re-lowers \p Plan to LIR and runs the abstract interpreter over it:
/// translation validation of the checks the plan dropped (HAC009) and
/// static race checking of whatever the parallel planner flagged
/// (HAC010/HAC011), replicated at \p Threads workers. Findings report
/// through \p Diags under a "verify-lir" span.
void verifyLoweredLIR(const ExecPlan &Plan, const ArrayDims &Dims,
                      const ParamEnv &Params, unsigned Threads,
                      DiagnosticEngine &Diags) {
  HAC_TRACE_SPAN(Span, "verify-lir");
  lir::PlanVerifyOptions VO;
  VO.Threads = Threads;
  lir::PlanVerifyResult R = lir::verifyPlanLIR(Plan, Dims, Params, VO);
  lir::reportLIRFindings(R, Diags);
}

/// Parses \p Source under a "parse" span.
ExprPtr parsePhase(const std::string &Source, DiagnosticEngine &Diags) {
  HAC_TRACE_SPAN(Span, "parse");
  return parseString(Source, Diags);
}

/// Builds the clause tree under a "clause-tree" span.
CompNest nestPhase(const Expr *SvList, const ParamEnv &Params,
                   DiagnosticEngine &Diags) {
  HAC_TRACE_SPAN(Span, "clause-tree");
  return buildCompNest(SvList, Params, Diags);
}

/// Records how one compile ended on the enclosing "compile" span.
void traceOutcome(bool Thunkless, const std::string &FallbackReason) {
  if (!traceEnabled())
    return;
  TraceSink::get().count(Thunkless ? "compile.thunkless"
                                   : "compile.fallback");
  TraceSink::get().annotate(Thunkless ? "thunkless"
                                      : "fallback: " + FallbackReason);
}

/// Peels outer `let` wrappers: constant integer bindings extend Params;
/// other plain-let bindings are recorded as expected runtime inputs.
/// Returns the first non-let expression (or the target letrec).
const Expr *peelLets(const Expr *E, ParamEnv &Params,
                     std::vector<std::string> &InputNames) {
  for (;;) {
    const auto *L = dyn_cast<LetExpr>(E);
    if (!L)
      return E;
    // Stop at the defining letrec/letrec* whose binding is the array.
    if (L->letKind() != LetKindEnum::Plain) {
      bool IsTarget = false;
      for (const LetBind &B : L->binds())
        IsTarget |= isa<MakeArrayExpr>(B.Value.get()) ||
                    isa<AccumArrayExpr>(B.Value.get());
      if (IsTarget)
        return E;
    }
    for (const LetBind &B : L->binds()) {
      int64_t V;
      if (tryEvalConstInt(B.Value.get(), Params, V))
        Params[B.Name] = V;
      else
        InputNames.push_back(B.Name);
    }
    E = L->body();
  }
}

} // namespace

std::optional<CompiledArray>
Compiler::compileArray(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=array");
  ExprPtr Ast = parsePhase(Source, Diags);
  if (!Ast)
    return std::nullopt;

  CompiledArray Result;
  Result.Params = Options.Params;
  const Expr *E = peelLets(Ast.get(), Result.Params, Result.InputNames);

  // Locate the defining binding: letrec/letrec*/let NAME = array ... .
  const MakeArrayExpr *Make = nullptr;
  if (const auto *L = dyn_cast<LetExpr>(E)) {
    for (const LetBind &B : L->binds()) {
      if (const auto *M = dyn_cast<MakeArrayExpr>(B.Value.get())) {
        Result.Name = B.Name;
        Make = M;
        break;
      }
    }
  } else if (const auto *M = dyn_cast<MakeArrayExpr>(E)) {
    // A bare array expression: anonymous target.
    Result.Name = "a";
    Make = M;
  }
  if (!Make) {
    Diags.error(E->loc(), "program does not define an array "
                          "(expected `letrec* NAME = array BOUNDS LIST`)");
    return std::nullopt;
  }

  if (!boundsToDims(Make->bounds(), Result.Params, Result.Dims, Diags))
    return std::nullopt;

  Result.Ast = std::move(Ast);
  Result.Nest = nestPhase(Make->svList(), Result.Params, Diags);
  if (!Result.Nest.Analyzable) {
    Result.Thunkless = false;
    Result.FallbackReason = Result.Nest.FallbackReason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }

  DepGraphOptions GraphOptions;
  GraphOptions.ExactBudget = Options.ExactBudget;
  Result.Graph = buildDepGraph(Result.Nest, Result.Name, Result.Params,
                               DepGraphMode::Monolithic, GraphOptions);
  Result.Collisions =
      analyzeCollisions(Result.Nest, Result.Params, Options.ExactBudget);
  Result.Coverage = analyzeCoverage(Result.Nest, Result.Dims, Result.Params,
                                    Result.Collisions);
  Result.ReadBounds = analyzeReadBounds(
      Result.Nest, {{Result.Name, Result.Dims}}, Result.Params);

  if (Result.Collisions.NoCollisions == CheckOutcome::Disproven) {
    Diags.error(SourceLoc(),
                "write collision: " + Result.Collisions.witnessStr());
    Result.Thunkless = false;
    Result.FallbackReason = "definite write collision";
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }
  if (Result.Coverage.InBounds == CheckOutcome::Disproven)
    Diags.warning(SourceLoc(),
                  "some array definitions are provably out of bounds: " +
                      Result.Coverage.detail());

  if (Result.Graph.HasUnknownRef) {
    Result.Thunkless = false;
    Result.FallbackReason = Result.Graph.UnknownRefReason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }

  // Schedule against the flow edges (output edges are error reports, not
  // ordering constraints, for plain monolithic arrays).
  std::vector<const DepEdge *> FlowEdges;
  for (const DepEdge &Edge : Result.Graph.Edges)
    if (Edge.Kind == DepKind::Flow)
      FlowEdges.push_back(&Edge);
  Result.Sched = scheduleNest(Result.Nest, FlowEdges);
  if (!Result.Sched.Thunkless) {
    Result.Thunkless = false;
    Result.FallbackReason = Result.Sched.FailureReason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }
  Result.Vectorization = analyzeVectorization(Result.Sched, FlowEdges);

  Result.Thunkless = true;
  CollisionAnalysis EffCollisions = Result.Collisions;
  CoverageAnalysis EffCoverage = Result.Coverage;
  ReadBoundsAnalysis EffReadBounds = Result.ReadBounds;
  if (!Options.EnableCheckElimination) {
    // Ablation: pretend nothing was proven.
    EffCollisions.NoCollisions = CheckOutcome::Unknown;
    EffCoverage.InBounds = CheckOutcome::Unknown;
    EffCoverage.NoEmpties = CheckOutcome::Unknown;
    EffReadBounds.AllInBounds = CheckOutcome::Unknown;
  }
  {
    HAC_TRACE_SPAN(PlanSpan, "plan-build");
    Result.Plan = buildArrayPlan(Result.Nest, Result.Sched, Result.Name,
                                 Result.Dims, EffCollisions, EffCoverage,
                                 EffReadBounds);
  }
  {
    // Classify every loop of the plan for the parallel backends; the
    // monolithic graph's flow and output edges are the constraints the
    // serial schedule honors.
    std::vector<const DepEdge *> AllEdges;
    for (const DepEdge &E : Result.Graph.Edges)
      AllEdges.push_back(&E);
    par::planParallel(Result.Plan, AllEdges);
  }
  if (Options.VerifyLIR)
    verifyLoweredLIR(Result.Plan, Result.Dims, Result.Params,
                     Options.VerifyLIRThreads, Diags);
  traceOutcome(true, "");
  return Result;
}

std::optional<CompiledUpdate>
Compiler::compileUpdate(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=update");
  ExprPtr Ast = parsePhase(Source, Diags);
  if (!Ast)
    return std::nullopt;

  CompiledUpdate Result;
  Result.Params = Options.Params;
  std::vector<std::string> InputNames;
  const Expr *E = peelLets(Ast.get(), Result.Params, InputNames);

  const BigUpdExpr *Upd = dyn_cast<BigUpdExpr>(E);
  if (!Upd) {
    // Allow `let b = bigupd a ... in b` shape.
    if (const auto *L = dyn_cast<LetExpr>(E))
      for (const LetBind &B : L->binds())
        if ((Upd = dyn_cast<BigUpdExpr>(B.Value.get())))
          break;
  }
  if (!Upd) {
    Diags.error(E->loc(), "program does not contain a bigupd");
    return std::nullopt;
  }
  const auto *Base = dyn_cast<VarExpr>(Upd->base());
  if (!Base) {
    Diags.error(Upd->base()->loc(), "bigupd base must be an array name");
    return std::nullopt;
  }
  Result.BaseName = Base->name();

  Result.Ast = std::move(Ast);
  Result.Nest = nestPhase(Upd->svList(), Result.Params, Diags);
  if (!Result.Nest.Analyzable) {
    Result.InPlace = false;
    Result.FallbackReason = Result.Nest.FallbackReason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }
  // The updated array's extents are runtime values: reads can be
  // enumerated for the verifier but never proven in bounds here.
  Result.ReadBounds = analyzeReadBounds(Result.Nest, {}, Result.Params);

  DepGraphOptions GraphOptions;
  GraphOptions.ExactBudget = Options.ExactBudget;
  Result.Graph = buildDepGraph(Result.Nest, Result.BaseName, Result.Params,
                               DepGraphMode::Update, GraphOptions);
  Result.Update = scheduleUpdate(Result.Nest, Result.Graph);
  if (!Result.Update.InPlace) {
    Result.InPlace = false;
    Result.FallbackReason = Result.Update.Reason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }
  // Vectorization and the parallel planner are judged against the
  // surviving (post-split) edges.
  std::vector<const DepEdge *> Remaining;
  {
    std::set<const Expr *> SplitReads;
    for (const SplitAction &A : Result.Update.Splits)
      SplitReads.insert(A.ReadRef);
    for (const DepEdge &E : Result.Graph.Edges)
      if (!(E.Kind == DepKind::Anti && SplitReads.count(E.ReadRef)))
        Remaining.push_back(&E);
    Result.Vectorization =
        analyzeVectorization(Result.Update.Sched, Remaining);
  }

  Result.InPlace = true;
  {
    HAC_TRACE_SPAN(PlanSpan, "plan-build");
    Result.Plan = buildUpdatePlan(Result.Nest, Result.Update,
                                  Result.BaseName, /*Dims=*/{});
  }
  par::planParallel(Result.Plan, Remaining);
  if (Options.VerifyLIR) {
    // The updated array's extents are runtime values; verify against the
    // shape estimate when one exists (same estimate the profiler uses).
    ArrayDims Dims;
    if (estimateUpdateDims(Result.Plan, Result.Params, Dims))
      verifyLoweredLIR(Result.Plan, Dims, Result.Params,
                       Options.VerifyLIRThreads, Diags);
  }
  traceOutcome(true, "");
  return Result;
}

namespace {

/// Rewrites every s/v pair value `v` in \p SvList into the combining
/// expression `f z v` with the lambda inlined: body[p0 := z, p1 := v].
ExprPtr transformAccumValues(const Expr *SvList, const LambdaExpr *Fn,
                             const Expr *Init) {
  switch (SvList->kind()) {
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(SvList);
    if (B->op() != BinaryOpKind::Append)
      break;
    return makeBinary(BinaryOpKind::Append,
                      transformAccumValues(B->lhs(), Fn, Init),
                      transformAccumValues(B->rhs(), Fn, Init));
  }
  case ExprKind::List: {
    std::vector<ExprPtr> Elems;
    for (const ExprPtr &Elem : cast<ListExpr>(SvList)->elems())
      Elems.push_back(transformAccumValues(Elem.get(), Fn, Init));
    return std::make_unique<ListExpr>(std::move(Elems), SvList->loc());
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(SvList);
    std::vector<LetBind> Binds;
    for (const LetBind &B : L->binds())
      Binds.emplace_back(B.Name, cloneExpr(B.Value.get()), B.Loc);
    return std::make_unique<LetExpr>(
        L->letKind(), std::move(Binds),
        transformAccumValues(L->body(), Fn, Init), SvList->loc());
  }
  case ExprKind::Comp: {
    const auto *C = cast<CompExpr>(SvList);
    // Clone the whole comprehension to obtain owned qualifier copies,
    // then rebuild it around the transformed head.
    ExprPtr Scratch = cloneExpr(SvList);
    std::vector<CompQual> Quals =
        std::move(cast<CompExpr>(Scratch.get())->quals());
    return std::make_unique<CompExpr>(
        transformAccumValues(C->head(), Fn, Init), std::move(Quals),
        C->isNested(), C->loc());
  }
  case ExprKind::SvPair: {
    const auto *P = cast<SvPairExpr>(SvList);
    // body[p0 := z] first (z is a literal, no capture possible), then
    // [p1 := v].
    ExprPtr Step1 =
        substitute(Fn->body(), Fn->params()[0], Init);
    ExprPtr NewValue =
        substitute(Step1.get(), Fn->params()[1], P->value());
    return std::make_unique<SvPairExpr>(cloneExpr(P->subscript()),
                                        std::move(NewValue), P->loc());
  }
  default:
    break;
  }
  return cloneExpr(SvList);
}

} // namespace

std::optional<CompiledArray>
Compiler::compileAccum(const std::string &Source) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=accum");
  ExprPtr Ast = parsePhase(Source, Diags);
  if (!Ast)
    return std::nullopt;

  CompiledArray Result;
  Result.Params = Options.Params;
  const Expr *E = peelLets(Ast.get(), Result.Params, Result.InputNames);

  const AccumArrayExpr *Accum = nullptr;
  if (const auto *L = dyn_cast<LetExpr>(E)) {
    for (const LetBind &B : L->binds())
      if (const auto *A = dyn_cast<AccumArrayExpr>(B.Value.get())) {
        Result.Name = B.Name;
        Accum = A;
        break;
      }
  } else if (const auto *A = dyn_cast<AccumArrayExpr>(E)) {
    Result.Name = "a";
    Accum = A;
  }
  if (!Accum) {
    Diags.error(E->loc(), "program does not define an accumulated array");
    return std::nullopt;
  }

  if (!boundsToDims(Accum->bounds(), Result.Params, Result.Dims, Diags))
    return std::nullopt;
  Result.Ast = std::move(Ast);
  Result.IsAccum = true;

  // The static special case needs a two-parameter lambda and a constant
  // initial value.
  const auto *Fn = dyn_cast<LambdaExpr>(Accum->fn());
  if (!Fn || Fn->params().size() != 2) {
    Result.Thunkless = false;
    Result.FallbackReason =
        "accumArray combining function is not a two-parameter lambda";
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }
  double InitValue = 0;
  if (const auto *IL = dyn_cast<IntLitExpr>(Accum->init()))
    InitValue = static_cast<double>(IL->value());
  else if (const auto *FL = dyn_cast<FloatLitExpr>(Accum->init()))
    InitValue = FL->value();
  else {
    int64_t IV;
    if (!tryEvalConstInt(Accum->init(), Result.Params, IV)) {
      Result.Thunkless = false;
      Result.FallbackReason =
          "accumArray initial value is not a compile-time constant";
      traceOutcome(false, Result.FallbackReason);
      return Result;
    }
    InitValue = static_cast<double>(IV);
  }
  Result.AccumInit = InitValue;

  // Inline the combining function into every pair value.
  ExprPtr Transformed =
      transformAccumValues(Accum->svList(), Fn, Accum->init());
  Result.Nest = nestPhase(Transformed.get(), Result.Params, Diags);
  if (!Result.Nest.Analyzable) {
    Result.Thunkless = false;
    Result.FallbackReason = Result.Nest.FallbackReason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }

  DepGraphOptions GraphOptions;
  GraphOptions.ExactBudget = Options.ExactBudget;
  Result.Graph = buildDepGraph(Result.Nest, Result.Name, Result.Params,
                               DepGraphMode::Monolithic, GraphOptions);
  if (Result.Graph.HasUnknownRef ||
      !Result.Graph.edgesOfKind(DepKind::Flow).empty()) {
    Result.Thunkless = false;
    Result.FallbackReason = "self-referencing accumulated arrays read "
                            "partially combined values; falling back";
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }

  // Soundness gate: the combining order is unobservable only when no
  // element receives more than one pair.
  Result.Collisions =
      analyzeCollisions(Result.Nest, Result.Params, Options.ExactBudget);
  Result.Coverage = analyzeCoverage(Result.Nest, Result.Dims, Result.Params,
                                    Result.Collisions);
  Result.ReadBounds = analyzeReadBounds(
      Result.Nest, {{Result.Name, Result.Dims}}, Result.Params);
  if (Result.Collisions.NoCollisions != CheckOutcome::Proven) {
    Result.Thunkless = false;
    Result.FallbackReason =
        "possible multiple pairs per element: combining order must be "
        "preserved (interpreter fallback)";
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }

  Result.Sched = scheduleNest(Result.Nest, {});
  if (!Result.Sched.Thunkless) {
    Result.Thunkless = false;
    Result.FallbackReason = Result.Sched.FailureReason;
    traceOutcome(false, Result.FallbackReason);
    return Result;
  }
  Result.Vectorization = analyzeVectorization(Result.Sched, {});

  Result.Thunkless = true;
  CoverageAnalysis EffCoverage = Result.Coverage;
  // Untouched elements are the initial value, never "empties".
  EffCoverage.NoEmpties = CheckOutcome::Proven;
  {
    HAC_TRACE_SPAN(PlanSpan, "plan-build");
    Result.Plan = buildArrayPlan(Result.Nest, Result.Sched, Result.Name,
                                 Result.Dims, Result.Collisions,
                                 EffCoverage, Result.ReadBounds);
  }
  // The gates above proved there are no flow edges and no collisions:
  // every loop of an accumulated array is trivially independent.
  par::planParallel(Result.Plan, {});
  if (Options.VerifyLIR)
    verifyLoweredLIR(Result.Plan, Result.Dims, Result.Params,
                     Options.VerifyLIRThreads, Diags);
  traceOutcome(true, "");
  return Result;
}

std::optional<CompiledArray>
Compiler::compileArrayInPlace(const std::string &Source,
                              const std::string &ReuseName) {
  HAC_TRACE_SPAN(CompileSpan, "compile");
  if (traceEnabled())
    TraceSink::get().annotate("mode=array-in-place reuse=" + ReuseName);
  auto Result = compileArray(Source);
  if (!Result)
    return std::nullopt;
  Result->ReuseName = ReuseName;
  if (!Result->Nest.Analyzable || Result->Graph.HasUnknownRef ||
      Result->Collisions.NoCollisions == CheckOutcome::Disproven) {
    Result->Thunkless = false;
    traceOutcome(false, Result->FallbackReason);
    return Result;
  }

  // Antidependences on the reused input join the flow dependences.
  DepGraphOptions GraphOptions;
  GraphOptions.ExactBudget = Options.ExactBudget;
  DepGraph AntiGraph = buildDepGraph(Result->Nest, ReuseName, Result->Params,
                                     DepGraphMode::Update, GraphOptions);
  if (AntiGraph.HasUnknownRef) {
    Result->Thunkless = false;
    Result->FallbackReason = AntiGraph.UnknownRefReason;
    traceOutcome(false, Result->FallbackReason);
    return Result;
  }
  DepGraph Combined;
  Combined.NumClauses = Result->Graph.NumClauses;
  for (const DepEdge &E : Result->Graph.Edges)
    if (E.Kind == DepKind::Flow)
      Combined.Edges.push_back(E);
  for (const DepEdge &E : AntiGraph.Edges)
    Combined.Edges.push_back(E);

  Result->InPlaceSched = scheduleUpdate(Result->Nest, Combined);
  // FailingEdges point into the local Combined graph; never expose them.
  Result->InPlaceSched.Sched.FailingEdges.clear();
  if (!Result->InPlaceSched.InPlace) {
    Result->Thunkless = false;
    Result->FallbackReason = Result->InPlaceSched.Reason;
    traceOutcome(false, Result->FallbackReason);
    return Result;
  }

  Result->Thunkless = true;
  std::vector<const DepEdge *> Remaining;
  {
    std::set<const Expr *> SplitReads;
    for (const SplitAction &A : Result->InPlaceSched.Splits)
      SplitReads.insert(A.ReadRef);
    for (const DepEdge &E : Combined.Edges)
      if (!(E.Kind == DepKind::Anti && SplitReads.count(E.ReadRef)))
        Remaining.push_back(&E);
    Result->Vectorization =
        analyzeVectorization(Result->InPlaceSched.Sched, Remaining);
  }
  // With storage reuse the alias shares the target's extents, so its
  // reads become provable too.
  Result->ReadBounds = analyzeReadBounds(
      Result->Nest,
      {{Result->Name, Result->Dims}, {ReuseName, Result->Dims}},
      Result->Params);
  CollisionAnalysis EffCollisions = Result->Collisions;
  CoverageAnalysis EffCoverage = Result->Coverage;
  ReadBoundsAnalysis EffReadBounds = Result->ReadBounds;
  if (!Options.EnableCheckElimination) {
    EffCollisions.NoCollisions = CheckOutcome::Unknown;
    EffCoverage.InBounds = CheckOutcome::Unknown;
    EffCoverage.NoEmpties = CheckOutcome::Unknown;
    EffReadBounds.AllInBounds = CheckOutcome::Unknown;
  }
  {
    HAC_TRACE_SPAN(PlanSpan, "plan-build");
    Result->Plan = buildInPlaceArrayPlan(Result->Nest, Result->InPlaceSched,
                                         Result->Name, ReuseName,
                                         Result->Dims, EffCollisions,
                                         EffCoverage, EffReadBounds);
  }
  par::planParallel(Result->Plan, Remaining);
  if (Options.VerifyLIR)
    verifyLoweredLIR(Result->Plan, Result->Dims, Result->Params,
                     Options.VerifyLIRThreads, Diags);
  Result->Sched = Result->InPlaceSched.Sched;
  traceOutcome(true, "");
  return Result;
}

bool CompiledArray::evaluate(DoubleArray &Out, Executor &Exec,
                             std::string &Err) const {
  if (!Thunkless) {
    Err = "array was not compiled thunklessly: " + FallbackReason;
    return false;
  }
  Out = DoubleArray(Dims);
  if (IsAccum) {
    HAC_TRACE_SPAN(PrefillSpan, "accum.prefill");
    for (size_t I = 0; I != Out.size(); ++I)
      Out[I] = AccumInit;
  }
  if (Plan.CheckCollisions || Plan.CheckEmpties)
    Out.enableDefinedBits();
  return Exec.run(Plan, Out, Err);
}

bool CompiledArray::evaluateInPlace(DoubleArray &Target, Executor &Exec,
                                    std::string &Err) const {
  if (!Thunkless || ReuseName.empty()) {
    Err = "array was not compiled for in-place reuse: " + FallbackReason;
    return false;
  }
  if (Target.dims() != Dims) {
    Err = "in-place target has the wrong shape";
    return false;
  }
  if (Plan.CheckCollisions || Plan.CheckEmpties)
    Target.enableDefinedBits();
  return Exec.run(Plan, Target, Err);
}

bool CompiledUpdate::evaluateInPlace(DoubleArray &Target, Executor &Exec,
                                     std::string &Err) const {
  if (!InPlace) {
    Err = "update was not compiled in place: " + FallbackReason;
    return false;
  }
  return Exec.run(Plan, Target, Err);
}

std::string CompiledArray::report() const {
  std::ostringstream OS;
  OS << "=== array '" << Name << "'";
  for (const auto &[Lo, Hi] : Dims)
    OS << " [" << Lo << ".." << Hi << "]";
  OS << " ===\n";
  if (!Nest.Analyzable) {
    OS << "not analyzable: " << Nest.FallbackReason << "\n";
    return OS.str();
  }
  OS << "clauses: " << Nest.numClauses() << ", loops: " << Nest.Loops.size()
     << "\n";
  OS << "dependence graph:\n" << Graph.str();
  OS << "collisions: " << checkOutcomeName(Collisions.NoCollisions);
  if (Collisions.Witness)
    OS << " (" << Collisions.witnessStr() << ")";
  OS << "\n";
  OS << "in-bounds: " << checkOutcomeName(Coverage.InBounds)
     << ", empties: " << checkOutcomeName(Coverage.NoEmpties)
     << " (instances " << Coverage.TotalInstances << " / size "
     << Coverage.ArraySize << ")\n";
  OS << "read-bounds: " << checkOutcomeName(ReadBounds.AllInBounds) << " ("
     << ReadBounds.numProven() << "/" << ReadBounds.Reads.size()
     << " reads proven)\n";
  if (Thunkless) {
    OS << "schedule (thunkless, " << Sched.PassCount << " passes):\n"
       << Sched.str();
    OS << "runtime checks: bounds="
       << (Plan.CheckStoreBounds ? "on" : "off")
       << " collisions=" << (Plan.CheckCollisions ? "on" : "off")
       << " empties=" << (Plan.CheckEmpties ? "on" : "off")
       << " reads=" << (Plan.CheckReadBounds ? "on" : "off") << "\n";
    OS << Vectorization.str();
  } else {
    OS << "thunked fallback: " << FallbackReason << "\n";
  }
  return OS.str();
}

std::string CompiledUpdate::report() const {
  std::ostringstream OS;
  OS << "=== bigupd '" << BaseName << "' ===\n";
  if (!Nest.Analyzable) {
    OS << "not analyzable: " << Nest.FallbackReason << "\n";
    return OS.str();
  }
  OS << "clauses: " << Nest.numClauses() << "\n";
  OS << "dependence graph:\n" << Graph.str();
  if (InPlace) {
    OS << "in place (splits: " << Update.Splits.size()
       << ", extra copies: " << Update.splitCopyCost() << ")\n";
    for (const SplitAction &A : Update.Splits)
      OS << "  " << A.str() << "\n";
    OS << "schedule:\n" << Update.Sched.str();
    OS << Vectorization.str();
  } else {
    OS << "copying fallback: " << FallbackReason << "\n";
  }
  return OS.str();
}
