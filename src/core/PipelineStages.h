//===- core/PipelineStages.h - Shared compilation stages --------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged pipeline every Compiler entry point is a thin wrapper over:
///
///   parse -> strip-outer-lets -> nest -> dependence -> analyses ->
///   schedule -> plan (+ parallel classification + LIR verification)
///
/// Each stage carries its own trace-span, CompileOptions, and
/// DiagnosticEngine wiring exactly once, so a cross-cutting feature
/// (tracing, check-elimination ablation, translation validation, the
/// parallel planner) is threaded through the pipeline in one place
/// instead of once per entry point. The ModuleCompiler drives the same
/// stages once per binding of a multi-array program.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_CORE_PIPELINESTAGES_H
#define HAC_CORE_PIPELINESTAGES_H

#include "core/Compiler.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace hac {
namespace stages {

/// Everything a stage needs from its driver: the compile knobs and the
/// engine findings report through.
struct StageContext {
  const CompileOptions &Options;
  DiagnosticEngine &Diags;
};

//===----------------------------------------------------------------------===//
// Frontend stages
//===----------------------------------------------------------------------===//

/// Parses \p Source under a "parse" span. Null on syntax errors
/// (diagnostics explain).
ExprPtr parse(StageContext &Ctx, const std::string &Source);

/// Peels outer `let` wrappers: constant integer bindings extend
/// \p Params; other plain-let bindings are recorded as expected runtime
/// inputs. Returns the first non-let expression (or the defining
/// letrec whose bindings include an array/accumArray construction).
const Expr *stripOuterLets(const Expr *E, ParamEnv &Params,
                           std::vector<std::string> &InputNames);

/// Parses the bounds argument of `array` into concrete dimensions given
/// the parameter environment. Accepts (lo,hi) and ((l1..),(h1..)).
bool arrayBoundsToDims(StageContext &Ctx, const Expr *Bounds,
                       const ParamEnv &Params, ArrayDims &Out);

//===----------------------------------------------------------------------===//
// Analysis stages
//===----------------------------------------------------------------------===//

/// Builds the clause tree under a "clause-tree" span.
CompNest nest(StageContext &Ctx, const Expr *SvList, const ParamEnv &Params);

/// Builds the dependence graph with the context's exact-test budget.
DepGraph dependence(StageContext &Ctx, const CompNest &Nest,
                    const std::string &Target, const ParamEnv &Params,
                    DepGraphMode Mode);

/// Runs the collision / coverage / read-bounds analyses over
/// \p Result.Nest into the result. \p Extents maps statically known
/// array shapes for the read-bounds analysis; the target's own entry is
/// added automatically.
void arrayAnalyses(StageContext &Ctx, CompiledArray &Result,
                   std::map<std::string, ArrayDims> Extents = {});

//===----------------------------------------------------------------------===//
// Outcome helpers
//===----------------------------------------------------------------------===//

/// Records a thunked fallback on the result and the enclosing "compile"
/// trace span.
void fallback(CompiledArray &Result, const std::string &Reason);
void fallback(CompiledUpdate &Result, const std::string &Reason);

//===----------------------------------------------------------------------===//
// Scheduling and planning stages
//===----------------------------------------------------------------------===//

/// Static scheduling of an array construction against \p Edges, plus the
/// Section 10 vectorization report. Returns false (after recording the
/// fallback) when no thunkless schedule exists.
bool scheduleArray(StageContext &Ctx, CompiledArray &Result,
                   const std::vector<const DepEdge *> &Edges);

/// The check-elimination ablation: when the context disables
/// elimination, every Proven outcome is masked back to Unknown so all
/// runtime checks stay on.
void maskUnprovenChecks(StageContext &Ctx, CollisionAnalysis &Collisions,
                        CoverageAnalysis &Coverage,
                        ReadBoundsAnalysis &ReadBounds);

/// The dependence edges that survive node splitting (anti edges whose
/// reads were redirected to temporaries no longer constrain anything).
std::vector<const DepEdge *>
edgesAfterSplits(const std::vector<DepEdge> &Edges,
                 const std::vector<SplitAction> &Splits);

/// The shared pipeline tail: builds the plan under a "plan-build" span
/// via \p Build, classifies every plan loop for the parallel backends
/// against \p ParEdges, optionally runs the LIR translation validator
/// (CompileOptions::VerifyLIR; \p Dims may be empty for updates, in
/// which case the shape estimate gates validation), and records the
/// thunkless outcome on the trace.
void planAndFinish(StageContext &Ctx, ExecPlan &Plan,
                   const std::function<ExecPlan()> &Build,
                   const std::vector<const DepEdge *> &ParEdges,
                   const ArrayDims &Dims, const ParamEnv &Params);

//===----------------------------------------------------------------------===//
// The full mid-pipeline for one array construction
//===----------------------------------------------------------------------===//

/// Compiles one named `array BOUNDS SVLIST` construction through the
/// shared stages: nest -> dependence -> analyses -> schedule -> plan.
/// \p Result must have Name, Dims, and Params filled in; \p Extents maps
/// statically known shapes of *other* arrays the values may read (the
/// ModuleCompiler passes sibling bindings here). On return
/// Result.Thunkless says whether a plan was produced; a false return
/// with diagnostics means a hard error (definite write collision).
void compileArrayBinding(StageContext &Ctx, CompiledArray &Result,
                         const MakeArrayExpr *Make,
                         std::map<std::string, ArrayDims> Extents = {});

} // namespace stages
} // namespace hac

#endif // HAC_CORE_PIPELINESTAGES_H
