//===- runtime/Executor.cpp - LIR plan execution --------------------------===//

#include "runtime/Executor.h"

#include "jit/JitCompiler.h"
#include "lir/LIRAbsint.h"
#include "lir/LIREval.h"
#include "lir/LIRLowering.h"
#include "lir/LIRPasses.h"
#include "parallel/ParPlan.h"
#include "parallel/ThreadPool.h"
#include "support/Profile.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>

using namespace hac;

namespace hac {

/// Per-executor cache of lowered programs. Keyed on the plan's builder-
/// assigned Id plus everything else the lowering depends on; the
/// structural salt (statement count, endpoints, check flags) guards the
/// rare case of a mutated plan copy carrying a stale Id.
///
/// LRU-bounded: entries live in a list ordered most-recent-first (a hit
/// splices to the front, pointers stay stable), and inserting past the
/// HAC_PLAN_CACHE capacity evicts the back.
struct LIRCacheImpl {
  struct Key {
    uint64_t PlanId = 0;
    bool ValidateReads = false;
    bool Optimize = true;
    bool SecondChance = true;
    bool Parallel = false;
    size_t NumStmts = 0;
    const void *FirstStmt = nullptr;
    const void *LastStmt = nullptr;
    uint8_t CheckFlags = 0;
    ArrayDims TargetDims;
    std::map<std::string, ArrayDims> InputDims;

    bool operator==(const Key &O) const {
      return PlanId == O.PlanId && ValidateReads == O.ValidateReads &&
             Optimize == O.Optimize && SecondChance == O.SecondChance &&
             Parallel == O.Parallel &&
             NumStmts == O.NumStmts &&
             FirstStmt == O.FirstStmt && LastStmt == O.LastStmt &&
             CheckFlags == O.CheckFlags && TargetDims == O.TargetDims &&
             InputDims == O.InputDims;
    }
  };
  struct Entry {
    Key K;
    lir::LIRProgram Prog;
    /// The plan's native kernel (shared with the JitCompiler table), or
    /// null while JIT is off / not yet requested for this entry.
    std::shared_ptr<jit::KernelEntry> Jit;
    bool Interpreted = false; ///< some run of this entry used the evaluator
    bool SwapCounted = false; ///< the interp→native swap was tallied
    bool JitWarned = false;   ///< the build-failure fallback was reported
  };
  std::list<Entry> Entries; ///< most recently used first
  size_t Capacity;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;

  LIRCacheImpl() : Capacity(capacityFromEnv()) {}

  /// HAC_PLAN_CACHE: strict integer parse; garbage keeps the default of
  /// 64 with a warning, and values below 1 clamp to 1 with a warning.
  static size_t capacityFromEnv() {
    const char *Env = std::getenv("HAC_PLAN_CACHE");
    if (!Env || !*Env)
      return 64;
    char *End = nullptr;
    errno = 0;
    long N = std::strtol(Env, &End, 10);
    if (errno != 0 || End == Env || *End != '\0') {
      std::fprintf(stderr,
                   "hac: warning: HAC_PLAN_CACHE='%s' is not an integer; "
                   "using the default of 64\n",
                   Env);
      return 64;
    }
    if (N < 1) {
      std::fprintf(stderr,
                   "hac: warning: HAC_PLAN_CACHE=%ld clamped to 1\n", N);
      return 1;
    }
    return static_cast<size_t>(N);
  }
};

} // namespace hac

namespace {

LIRCacheImpl::Key makeKey(const ExecPlan &Plan, bool ValidateReads,
                          bool Optimize, bool SecondChance, bool Parallel,
                          const ArrayDims &TargetDims,
                          std::map<std::string, ArrayDims> InputDims) {
  LIRCacheImpl::Key K;
  K.PlanId = Plan.Id;
  K.ValidateReads = ValidateReads;
  K.Optimize = Optimize;
  K.SecondChance = SecondChance;
  K.Parallel = Parallel;
  K.NumStmts = Plan.Stmts.size();
  K.FirstStmt = Plan.Stmts.empty() ? nullptr
                                   : static_cast<const void *>(
                                         Plan.Stmts.front().Clause
                                             ? (const void *)Plan.Stmts.front()
                                                   .Clause
                                             : (const void *)Plan.Stmts.front()
                                                   .Loop);
  K.LastStmt = Plan.Stmts.empty()
                   ? nullptr
                   : static_cast<const void *>(
                         Plan.Stmts.back().Clause
                             ? (const void *)Plan.Stmts.back().Clause
                             : (const void *)Plan.Stmts.back().Loop);
  K.CheckFlags = (Plan.CheckStoreBounds ? 1 : 0) |
                 (Plan.CheckCollisions ? 2 : 0) | (Plan.CheckEmpties ? 4 : 0) |
                 (Plan.CheckReadBounds ? 8 : 0) | (Plan.InPlace ? 16 : 0);
  K.TargetDims = TargetDims;
  K.InputDims = std::move(InputDims);
  return K;
}

/// Converts one run's EvalProfile into the sink's source-attributed
/// form. The par class reported is the one the loop *executed* as:
/// the sealed program's LoopBegin flags when a pool ran it, "serial"
/// otherwise (a -j1 run of a doall-planned loop is a serial loop).
void recordProfile(const ExecPlan &Plan, const lir::LIRProgram &P,
                   const lir::EvalProfile &EP, bool Parallel,
                   const char *Tier = "interp") {
  ProgramProfile PP;
  PP.Name = Plan.TargetName;
  PP.Tier = Tier;
  PP.Runs = 1;
  PP.RootInstrs = EP.RootInstrs;
  PP.RootChecks = EP.RootChecks;
  PP.RootNanos = EP.RootNanos;
  std::vector<par::ParClass> Exec(P.Loops.size(), par::ParClass::Serial);
  if (Parallel)
    for (const lir::LInst &I : P.Code) {
      if (I.Op != lir::LOp::LoopBegin || I.Meta < 0)
        continue;
      if (I.parDoall())
        Exec[I.Meta] = par::ParClass::Doall;
      else if (I.parWaveOuter())
        Exec[I.Meta] = par::ParClass::WaveOuter;
      else if (I.parWaveInner())
        Exec[I.Meta] = par::ParClass::WaveInner;
    }
  PP.Loops.reserve(P.Loops.size());
  for (size_t L = 0; L != P.Loops.size(); ++L) {
    const lir::LoopMeta &M = P.Loops[L];
    ProfiledLoop PL;
    PL.Var = M.Var;
    PL.Line = M.Line;
    PL.Col = M.Col;
    PL.Depth = M.Depth;
    PL.Parent = M.Parent;
    PL.ParClass = par::parClassName(Exec[L]);
    PL.Witness = M.Witness;
    if (L < EP.Loops.size()) {
      const lir::LoopProfile &LP = EP.Loops[L];
      PL.Entries = LP.Entries;
      PL.Trips = LP.Trips;
      PL.Instrs = LP.Instrs;
      PL.Checks = LP.Checks;
      PL.Nanos = LP.Nanos;
    }
    PP.Loops.push_back(std::move(PL));
  }
  ProfileSink::get().record(PP);
}

} // namespace

Executor::Executor(ParamEnv Params)
    : Params(std::move(Params)), JitM(jit::jitModeFromEnv()) {}

void Executor::setNumThreads(unsigned N) {
  if (N == 0)
    N = par::ThreadPool::defaultThreads();
  if (N != Threads) {
    Threads = N;
    Pool.reset(); // rebuilt lazily at the next parallel run
  }
}

void Executor::bindInput(const std::string &Name, const DoubleArray *Array) {
  Inputs[Name] = Array;
}

LIRCacheStats Executor::lirCacheStats() const {
  LIRCacheStats S;
  S.Capacity = Cache ? Cache->Capacity : LIRCacheImpl::capacityFromEnv();
  if (Cache) {
    S.Hits = Cache->Hits;
    S.Misses = Cache->Misses;
    S.Evictions = Cache->Evictions;
    S.Entries = Cache->Entries.size();
  }
  return S;
}

bool Executor::runImpl(const ExecPlan &Plan, DoubleArray &Target,
                       std::string &Err) {
  // The target's own dims are authoritative: update plans carry empty
  // Dims, and the seed linearized through the target everywhere.
  const ArrayDims &TargetDims = Target.dims();
  std::map<std::string, ArrayDims> InDims;
  for (const auto &[Name, Arr] : Inputs)
    InDims[Name] = Arr->dims();

  const bool Parallel = Threads > 1;
  if (!Cache)
    Cache = std::make_shared<LIRCacheImpl>();
  LIRCacheImpl::Key Key =
      makeKey(Plan, ValidateReads, LIROptimize, LIRSecondChance, Parallel,
              TargetDims, std::move(InDims));

  const lir::LIRProgram *Prog = nullptr;
  LIRCacheImpl::Entry *CacheEnt = nullptr;
  if (Plan.Id != 0) {
    for (auto It = Cache->Entries.begin(); It != Cache->Entries.end(); ++It)
      if (It->K == Key) {
        // Move-to-front keeps the list LRU-ordered; splicing does not
        // invalidate the program pointer.
        Cache->Entries.splice(Cache->Entries.begin(), Cache->Entries, It);
        CacheEnt = &Cache->Entries.front();
        Prog = &CacheEnt->Prog;
        break;
      }
    if (Prog) {
      ++Cache->Hits;
      HAC_TRACE_COUNT("lir.cache.hits");
    } else {
      ++Cache->Misses;
      HAC_TRACE_COUNT("lir.cache.misses");
    }
  }

  lir::LIRProgram Local;
  if (!Prog) {
    {
      TraceSpan Span("lower.lir");
      Local = lir::lowerPlan(Plan, TargetDims, Params, Key.InputDims,
                             /*ForC=*/false, ValidateReads);
      // Single-threaded runs strip the ParPlanner flags up front so the
      // optimized serial LIR is byte-identical to the pre-parallel
      // pipeline (par-flagged loops opt out of strength reduction).
      if (!Parallel)
        lir::stripParFlags(Local);
      if (LIROptimize)
        lir::optimize(Local);
      // Second-chance elimination: residual checks whose ranges only
      // become provable after LICM/strength reduction are deleted here.
      // Counter instructions are never touched, so ExecStats stays
      // bit-identical whether or not this runs.
      if (LIROptimize && LIRSecondChance)
        lir::secondChance(Local);
      std::string SealErr;
      if (!lir::seal(Local, SealErr)) {
        Err = "internal error: LIR seal failed: " + SealErr;
        return false;
      }
      // Demote any par-flagged loop whose lowered body turned out not
      // to be safe for concurrent execution (needs a sealed program).
      if (Parallel)
        lir::legalizePar(Local, /*ForC=*/false);
    }
    if (traceEnabled()) {
      TraceSink &S = TraceSink::get();
      S.count("lir.instrs", Local.Code.size());
      S.count("lir.hoisted", Local.NumHoisted);
      S.count("lir.strength_reduced", Local.NumStrengthReduced);
      S.count("lir.dce", Local.NumDce);
      S.count("lir.absint.second_chance", Local.NumAbsintElim);
      if (Parallel) {
        uint64_t Doall = 0, Wave = 0;
        for (const lir::LInst &I : Local.Code)
          if (I.Op == lir::LOp::LoopBegin) {
            Doall += I.parDoall();
            Wave += I.parWaveOuter();
          }
        S.count("lir.par_doall", Doall);
        S.count("lir.par_wavefront", Wave);
      }
    }
    if (Plan.Id != 0) {
      while (Cache->Entries.size() >= Cache->Capacity) {
        Cache->Entries.pop_back();
        ++Cache->Evictions;
        HAC_TRACE_COUNT("lir.cache.evictions");
      }
      Cache->Entries.push_front({std::move(Key), std::move(Local)});
      CacheEnt = &Cache->Entries.front();
      Prog = &CacheEnt->Prog;
    } else {
      Prog = &Local;
    }
  }
  const lir::LIRProgram &P = *Prog;

  std::vector<const double *> InVec;
  InVec.reserve(P.InputNames.size());
  for (const std::string &Name : P.InputNames)
    InVec.push_back(Inputs.at(Name)->data());

  // Node-splitting temporary footprint. The high-water mark counts the
  // same for either tier — native kernels calloc the same rings and
  // snapshots internally.
  uint64_t TempBytes = 0;
  for (size_t I = 0; I != P.RingSizes.size(); ++I)
    TempBytes += P.RingSizes[I] * sizeof(double);
  for (size_t I = 0; I != P.SnapSizes.size(); ++I)
    TempBytes += P.SnapSizes[I] * sizeof(double);
  if (TempBytes > Stats.TempBytes)
    Stats.TempBytes = TempBytes;

  // Tiered execution: LIR-cacheable plans may run as native kernels.
  // Validate-reads programs always interpret (CheckDefined is an
  // evaluator-only debugging construct), as do uncached (Id == 0) plans.
  const bool WantJit =
      JitM != jit::JitMode::Off && CacheEnt != nullptr && !ValidateReads;
  // Async compiles ride the pool's background lane, so a pool exists
  // even for single-threaded executors (a 1-thread pool spawns no
  // workers until something is submitted).
  if ((Threads > 1 || (WantJit && JitM == jit::JitMode::Async)) && !Pool)
    Pool = std::make_shared<par::ThreadPool>(Threads);
  if (WantJit && !CacheEnt->Jit) {
    jit::JitCompiler &JC = JitC ? *JitC : jit::JitCompiler::global();
    CacheEnt->Jit =
        JC.acquire(P, Threads, JitM == jit::JitMode::Async, Pool.get());
  }

  const bool Profiled = profileEnabled();
  bool RanNative = false;
  if (WantJit && CacheEnt->Jit) {
    jit::KernelEntry &KE = *CacheEnt->Jit;
    const jit::KernelEntry::State St = KE.state();
    if (St == jit::KernelEntry::Failed && !CacheEnt->JitWarned) {
      // cc unavailable / emission refused: interpret forever, say why
      // once.
      std::fprintf(stderr,
                   "hac: warning: jit disabled for plan '%s': %s\n",
                   Plan.TargetName.c_str(), KE.Error.c_str());
      CacheEnt->JitWarned = true;
      ++JitE.Fallbacks;
      HAC_TRACE_COUNT("jit.fallbacks");
    }
    if (St == jit::KernelEntry::Ready) {
      jit::KernelFn Fn = KE.Fn.load(std::memory_order_acquire);
      // Kernels with faulting checks report failure as an rc code, not
      // a message; snapshot the pre-image so a failed native run can be
      // replayed through the evaluator for the exact diagnostic (and
      // the exact failure-path stats).
      std::vector<double> PreData;
      std::vector<uint8_t> PreDef;
      if (KE.CanFail) {
        PreData.assign(Target.data(), Target.data() + Target.size());
        if (const uint8_t *D = Target.definedData())
          PreDef.assign(D, D + Target.size());
      }
      unsigned long long KS[jit::KS_Count] = {0};
      const auto T0 = std::chrono::steady_clock::now();
      int Rc = Fn(Target.data(), InVec.data(), Target.definedData(), KS);
      const uint64_t Nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
      if (Rc == 0) {
        RanNative = true;
        Stats.Loads += KS[jit::KS_Loads];
        Stats.Stores += KS[jit::KS_Stores];
        Stats.RingSaves += KS[jit::KS_RingSaves];
        Stats.SnapshotCopies += KS[jit::KS_SnapshotCopies];
        Stats.BoundsChecks += KS[jit::KS_BoundsChecks];
        Stats.CollisionChecks += KS[jit::KS_CollisionChecks];
        Stats.GuardEvals += KS[jit::KS_GuardEvals];
        Stats.FusedIters += KS[jit::KS_FusedIters];
        ++JitE.NativeRuns;
        HAC_TRACE_COUNT("jit.native_runs");
        if (CacheEnt->Interpreted && !CacheEnt->SwapCounted) {
          CacheEnt->SwapCounted = true;
          ++JitE.TierSwaps;
          HAC_TRACE_COUNT("jit.tier_swaps");
        }
        if (Profiled) {
          lir::EvalProfile EP;
          EP.RootNanos = Nanos;
          recordProfile(Plan, P, EP, Threads > 1, "native");
        }
      } else {
        // Roll back and diagnose through the interpreter.
        if (KE.CanFail) {
          std::copy(PreData.begin(), PreData.end(), Target.data());
          if (!PreDef.empty())
            std::copy(PreDef.begin(), PreDef.end(), Target.definedData());
        }
        HAC_TRACE_COUNT("jit.native_faults");
      }
    }
  }

  if (!RanNative) {
    std::vector<std::vector<double>> Rings(P.RingSizes.size());
    std::vector<std::vector<double>> Snaps(P.SnapSizes.size());
    for (size_t I = 0; I != P.RingSizes.size(); ++I)
      Rings[I].assign(P.RingSizes[I], 0.0);
    for (size_t I = 0; I != P.SnapSizes.size(); ++I)
      Snaps[I].assign(P.SnapSizes[I], 0.0);
    if (Threads > 1 && !Pool)
      Pool = std::make_shared<par::ThreadPool>(Threads);
    lir::EvalProfile EP;
    bool OK = lir::evalLIR(P, Target, InVec, Rings, Snaps, Stats, Err,
                           Threads > 1 ? Pool.get() : nullptr,
                           Profiled ? &EP : nullptr);
    if (CacheEnt)
      CacheEnt->Interpreted = true;
    ++JitE.InterpRuns;
    if (Profiled)
      recordProfile(Plan, P, EP, Threads > 1);
    if (!OK)
      return false;
  }

  // Empties check (Section 4): every element must have a definition.
  if (P.CheckEmpties && Target.hasDefinedBits()) {
    size_t Missing = Target.firstUndefined();
    if (Missing != Target.size()) {
      Err = "undefined array element (empty) at linear index " +
            std::to_string(Missing);
      return false;
    }
  }
  return true;
}

bool Executor::run(const ExecPlan &Plan, DoubleArray &Target,
                   std::string &Err) {
  const bool Traced = traceEnabled();
  const bool Profiled = profileEnabled();
  if (!Traced && !Profiled)
    return runImpl(Plan, Target, Err);

  // Instrumented run: time the execution and fold this run's stat
  // deltas into the sinks so compile-time and run-time telemetry land
  // in one report. The pool snapshot brackets the run because the pool
  // counters are monotonic over the executor's lifetime.
  par::PoolStats PS0 = Pool ? Pool->stats() : par::PoolStats{};
  ExecStats Before = Stats;
  bool OK;
  {
    TraceSpan Span("execute");
    OK = runImpl(Plan, Target, Err);
  }
  if (Traced) {
    TraceSink &S = TraceSink::get();
    S.count("exec.stores", Stats.Stores - Before.Stores);
    S.count("exec.loads", Stats.Loads - Before.Loads);
    S.count("exec.ring_saves", Stats.RingSaves - Before.RingSaves);
    S.count("exec.snapshot_copies",
            Stats.SnapshotCopies - Before.SnapshotCopies);
    S.count("exec.bounds_checks", Stats.BoundsChecks - Before.BoundsChecks);
    S.count("exec.collision_checks",
            Stats.CollisionChecks - Before.CollisionChecks);
    S.count("exec.guard_evals", Stats.GuardEvals - Before.GuardEvals);
    S.count("exec.fused_iters", Stats.FusedIters - Before.FusedIters);
    S.countMax("exec.temp_bytes_peak", Stats.TempBytes);
    if (!OK)
      S.count("exec.runtime_errors");
  }
  if (Pool) {
    par::PoolStats PS1 = Pool->stats();
    PoolUtilization U;
    U.Jobs = PS1.Jobs - PS0.Jobs;
    U.MaxQueueDepth = PS1.MaxQueueDepth; // high-water mark, not a delta
    U.Workers.resize(PS1.Workers.size());
    for (size_t I = 0; I != PS1.Workers.size(); ++I) {
      par::WorkerStats W0 =
          I < PS0.Workers.size() ? PS0.Workers[I] : par::WorkerStats{};
      U.Workers[I].Tasks = PS1.Workers[I].Tasks - W0.Tasks;
      U.Workers[I].Steals = PS1.Workers[I].Steals - W0.Steals;
      U.Workers[I].IdleNanos = PS1.Workers[I].IdleNanos - W0.IdleNanos;
    }
    if (U.Jobs != 0) {
      if (Traced) {
        TraceSink &S = TraceSink::get();
        S.count("pool.jobs", U.Jobs);
        S.count("pool.tasks", PS1.Tasks - PS0.Tasks);
        S.count("pool.steals", PS1.Steals - PS0.Steals);
        S.countMax("pool.max_queue_depth", U.MaxQueueDepth);
        uint64_t Idle = 0;
        for (const PoolUtilization::Worker &W : U.Workers)
          Idle += W.IdleNanos;
        S.count("pool.idle_nanos", Idle);
      }
      if (Profiled)
        ProfileSink::get().recordPool(U);
    }
  }
  return OK;
}
