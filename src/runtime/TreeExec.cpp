//===- runtime/TreeExec.cpp - Seed tree-walking executor ------------------===//
//
// This file preserves the seed Executor's Runner unchanged (modulo the
// class name): it is the ablation baseline bench_lir compares the LIR
// evaluator against. Do not optimize it.
//
//===----------------------------------------------------------------------===//

#include "runtime/TreeExec.h"

#include "ast/ASTPrinter.h"
#include "support/Casting.h"

#include <cmath>
#include <functional>
#include <sstream>

using namespace hac;

namespace {

/// An unboxed scalar: the only runtime values compiled code manipulates.
struct Scalar {
  enum class Kind : uint8_t { Int, Float, Bool } K = Kind::Int;
  int64_t I = 0;
  double F = 0;
  bool B = false;

  static Scalar makeInt(int64_t V) {
    Scalar S;
    S.K = Kind::Int;
    S.I = V;
    return S;
  }
  static Scalar makeFloat(double V) {
    Scalar S;
    S.K = Kind::Float;
    S.F = V;
    return S;
  }
  static Scalar makeBool(bool V) {
    Scalar S;
    S.K = Kind::Bool;
    S.B = V;
    return S;
  }

  bool isNumeric() const { return K != Kind::Bool; }
  double asDouble() const { return K == Kind::Int ? double(I) : F; }
};

/// Execution state for one plan run.
class Runner {
public:
  Runner(const ExecPlan &Plan, DoubleArray &Target, const ParamEnv &Params,
         const std::map<std::string, const DoubleArray *> &Inputs,
         ExecStats &Stats, bool ValidateReads)
      : Plan(Plan), Target(Target), Params(Params), Inputs(Inputs),
        Stats(Stats), ValidateReads(ValidateReads) {}

  bool run(std::string &Err) {
    // Allocate node-splitting temporaries.
    Rings.resize(Plan.Rings.size());
    uint64_t TempBytes = 0;
    for (const RingSpec &R : Plan.Rings) {
      Rings[R.Id].assign(R.size(), 0.0);
      TempBytes += R.size() * sizeof(double);
    }
    Snaps.resize(Plan.Snapshots.size());
    for (const SnapshotSpec &S : Plan.Snapshots) {
      if (!takeSnapshot(S))
        break;
      TempBytes += Snaps[S.Id].size() * sizeof(double);
    }
    if (TempBytes > Stats.TempBytes)
      Stats.TempBytes = TempBytes;

    if (Error.empty())
      execStmts(Plan.Stmts);
    if (!Error.empty()) {
      Err = Error;
      return false;
    }

    // Empties check (Section 4): every element must have a definition.
    if (Plan.CheckEmpties && Target.hasDefinedBits()) {
      size_t Missing = Target.firstUndefined();
      if (Missing != Target.size()) {
        Err = "undefined array element (empty) at linear index " +
              std::to_string(Missing);
        return false;
      }
    }
    return true;
  }

private:
  const ExecPlan &Plan;
  DoubleArray &Target;
  const ParamEnv &Params;
  const std::map<std::string, const DoubleArray *> &Inputs;
  ExecStats &Stats;
  bool ValidateReads;

  std::string Error;
  /// Lexical scope: loop indices and let-bound scalars, innermost last.
  std::vector<std::pair<std::string, Scalar>> Scope;
  /// Normalized (1-based) position of each active loop.
  std::map<const LoopNode *, int64_t> Norm;
  std::vector<std::vector<double>> Rings;
  std::vector<std::vector<double>> Snaps;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }
  bool failed() const { return !Error.empty(); }

  bool lookup(const std::string &Name, Scalar &Out) const {
    for (auto It = Scope.rbegin(); It != Scope.rend(); ++It) {
      if (It->first == Name) {
        Out = It->second;
        return true;
      }
    }
    auto PIt = Params.find(Name);
    if (PIt != Params.end()) {
      Out = Scalar::makeInt(PIt->second);
      return true;
    }
    return false;
  }

  const DoubleArray *arrayNamed(const std::string &Name) const {
    if (Name == Plan.TargetName ||
        (!Plan.AliasName.empty() && Name == Plan.AliasName))
      return &Target;
    auto It = Inputs.find(Name);
    return It == Inputs.end() ? nullptr : It->second;
  }

  bool takeSnapshot(const SnapshotSpec &S) {
    // Copy the (bounds-clipped) region of the target's *original*
    // contents.
    std::vector<std::pair<int64_t, int64_t>> Clipped = S.Region;
    if (Clipped.size() != Target.dims().size()) {
      fail("snapshot rank mismatch");
      return false;
    }
    for (size_t D = 0; D != Clipped.size(); ++D) {
      Clipped[D].first = std::max(Clipped[D].first, Target.dims()[D].first);
      Clipped[D].second =
          std::min(Clipped[D].second, Target.dims()[D].second);
    }
    size_t Size = 1;
    for (const auto &[Lo, Hi] : Clipped)
      Size *= Hi >= Lo ? static_cast<size_t>(Hi - Lo + 1) : 0;
    Snaps[S.Id].assign(S.size(), 0.0);

    // Iterate the clipped region copying element by element.
    std::vector<int64_t> Index(Clipped.size());
    for (size_t D = 0; D != Clipped.size(); ++D)
      Index[D] = Clipped[D].first;
    if (Size == 0)
      return true;
    for (;;) {
      size_t SrcLinear;
      if (Target.linearize(Index.data(), Index.size(), SrcLinear)) {
        size_t DstLinear = 0;
        for (size_t D = 0; D != Index.size(); ++D)
          DstLinear = DstLinear * static_cast<size_t>(S.Region[D].second -
                                                      S.Region[D].first + 1) +
                      static_cast<size_t>(Index[D] - S.Region[D].first);
        Snaps[S.Id][DstLinear] = Target[SrcLinear];
        ++Stats.SnapshotCopies;
      }
      // Advance the multi-index.
      size_t D = Index.size();
      for (;;) {
        if (D == 0)
          return true;
        --D;
        if (++Index[D] <= Clipped[D].second)
          break;
        Index[D] = Clipped[D].first;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Scalar expression evaluation
  //===--------------------------------------------------------------------===//

  Scalar eval(const Expr *E) {
    if (failed())
      return Scalar::makeInt(0);
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Scalar::makeInt(cast<IntLitExpr>(E)->value());
    case ExprKind::FloatLit:
      return Scalar::makeFloat(cast<FloatLitExpr>(E)->value());
    case ExprKind::BoolLit:
      return Scalar::makeBool(cast<BoolLitExpr>(E)->value());
    case ExprKind::Var: {
      Scalar S;
      if (!lookup(cast<VarExpr>(E)->name(), S)) {
        fail("unbound variable '" + cast<VarExpr>(E)->name() +
             "' in compiled code");
        return Scalar::makeInt(0);
      }
      return S;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Scalar V = eval(U->operand());
      if (failed())
        return V;
      if (U->op() == UnaryOpKind::Neg) {
        if (V.K == Scalar::Kind::Int)
          return Scalar::makeInt(-V.I);
        if (V.K == Scalar::Kind::Float)
          return Scalar::makeFloat(-V.F);
        fail("negation of a non-numeric value");
        return V;
      }
      if (V.K != Scalar::Kind::Bool) {
        fail("'not' of a non-boolean value");
        return V;
      }
      return Scalar::makeBool(!V.B);
    }
    case ExprKind::Binary:
      return evalBinary(cast<BinaryExpr>(E));
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      Scalar C = eval(I->cond());
      if (failed())
        return C;
      if (C.K != Scalar::Kind::Bool) {
        fail("'if' condition is not a boolean");
        return C;
      }
      return eval(C.B ? I->thenExpr() : I->elseExpr());
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      size_t Mark = Scope.size();
      for (const LetBind &B : L->binds()) {
        Scalar V = eval(B.Value.get());
        if (failed())
          return V;
        Scope.emplace_back(B.Name, V);
      }
      Scalar R = eval(L->body());
      Scope.resize(Mark);
      return R;
    }
    case ExprKind::ArraySub:
      return evalRead(cast<ArraySubExpr>(E));
    case ExprKind::Apply:
      return evalApply(cast<ApplyExpr>(E));
    default:
      fail(std::string("expression kind ") + exprKindName(E->kind()) +
           " is not supported in compiled code: " + exprToString(E));
      return Scalar::makeInt(0);
    }
  }

  Scalar evalBinary(const BinaryExpr *B) {
    if (B->op() == BinaryOpKind::And || B->op() == BinaryOpKind::Or) {
      Scalar L = eval(B->lhs());
      if (failed())
        return L;
      if (L.K != Scalar::Kind::Bool) {
        fail("boolean operator on a non-boolean value");
        return L;
      }
      if (B->op() == BinaryOpKind::And && !L.B)
        return Scalar::makeBool(false);
      if (B->op() == BinaryOpKind::Or && L.B)
        return Scalar::makeBool(true);
      Scalar R = eval(B->rhs());
      if (failed())
        return R;
      if (R.K != Scalar::Kind::Bool) {
        fail("boolean operator on a non-boolean value");
        return R;
      }
      return R;
    }

    Scalar L = eval(B->lhs());
    if (failed())
      return L;
    Scalar R = eval(B->rhs());
    if (failed())
      return R;

    switch (B->op()) {
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
    case BinaryOpKind::Mul:
    case BinaryOpKind::Div:
    case BinaryOpKind::Mod: {
      if (!L.isNumeric() || !R.isNumeric()) {
        fail("arithmetic on a non-numeric value");
        return L;
      }
      if (L.K == Scalar::Kind::Int && R.K == Scalar::Kind::Int) {
        switch (B->op()) {
        case BinaryOpKind::Add:
          return Scalar::makeInt(L.I + R.I);
        case BinaryOpKind::Sub:
          return Scalar::makeInt(L.I - R.I);
        case BinaryOpKind::Mul:
          return Scalar::makeInt(L.I * R.I);
        case BinaryOpKind::Div:
          if (R.I == 0) {
            fail("integer division by zero");
            return L;
          }
          return Scalar::makeInt(L.I / R.I);
        case BinaryOpKind::Mod:
          if (R.I == 0) {
            fail("integer modulo by zero");
            return L;
          }
          return Scalar::makeInt(L.I % R.I);
        default:
          break;
        }
      }
      double A = L.asDouble(), C = R.asDouble();
      switch (B->op()) {
      case BinaryOpKind::Add:
        return Scalar::makeFloat(A + C);
      case BinaryOpKind::Sub:
        return Scalar::makeFloat(A - C);
      case BinaryOpKind::Mul:
        return Scalar::makeFloat(A * C);
      case BinaryOpKind::Div:
        return Scalar::makeFloat(A / C);
      case BinaryOpKind::Mod:
        return Scalar::makeFloat(std::fmod(A, C));
      default:
        break;
      }
      break;
    }
    case BinaryOpKind::Eq:
    case BinaryOpKind::Ne:
    case BinaryOpKind::Lt:
    case BinaryOpKind::Le:
    case BinaryOpKind::Gt:
    case BinaryOpKind::Ge: {
      if (L.K == Scalar::Kind::Bool && R.K == Scalar::Kind::Bool) {
        if (B->op() == BinaryOpKind::Eq)
          return Scalar::makeBool(L.B == R.B);
        if (B->op() == BinaryOpKind::Ne)
          return Scalar::makeBool(L.B != R.B);
        fail("ordering comparison on booleans");
        return L;
      }
      if (!L.isNumeric() || !R.isNumeric()) {
        fail("comparison on a non-numeric value");
        return L;
      }
      double A = L.asDouble(), C = R.asDouble();
      switch (B->op()) {
      case BinaryOpKind::Eq:
        return Scalar::makeBool(A == C);
      case BinaryOpKind::Ne:
        return Scalar::makeBool(A != C);
      case BinaryOpKind::Lt:
        return Scalar::makeBool(A < C);
      case BinaryOpKind::Le:
        return Scalar::makeBool(A <= C);
      case BinaryOpKind::Gt:
        return Scalar::makeBool(A > C);
      case BinaryOpKind::Ge:
        return Scalar::makeBool(A >= C);
      default:
        break;
      }
      break;
    }
    case BinaryOpKind::Append:
      fail("'++' is not a scalar operation in compiled code");
      return L;
    default:
      break;
    }
    fail("unhandled binary operator");
    return L;
  }

  /// Evaluates an array subscript into \p Index.
  bool evalIndex(const Expr *IndexExpr, std::vector<int64_t> &Index) {
    auto AddDim = [&](const Expr *Dim) {
      Scalar V = eval(Dim);
      if (failed())
        return false;
      if (V.K != Scalar::Kind::Int) {
        fail("array subscript is not an integer");
        return false;
      }
      Index.push_back(V.I);
      return true;
    };
    if (const auto *T = dyn_cast<TupleExpr>(IndexExpr)) {
      for (const ExprPtr &Dim : T->elems())
        if (!AddDim(Dim.get()))
          return false;
      return true;
    }
    return AddDim(IndexExpr);
  }

  /// Linearizes a read index. When the read-bounds analysis proved every
  /// read in bounds (Plan.CheckReadBounds == false) the per-dimension
  /// compares are elided entirely; ValidateReads forces the checked path
  /// (without counting it as an eliminated-check candidate).
  bool readLinear(const DoubleArray &A, const std::string &Name,
                  const std::vector<int64_t> &Index, size_t &Linear) {
    if (!Plan.CheckReadBounds && !ValidateReads) {
      Linear = A.linearizeUnchecked(Index.data(), Index.size());
      return true;
    }
    if (Plan.CheckReadBounds)
      ++Stats.BoundsChecks;
    if (!A.linearize(Index.data(), Index.size(), Linear)) {
      fail("array read out of bounds on '" + Name + "'");
      return false;
    }
    return true;
  }

  Scalar evalRead(const ArraySubExpr *S) {
    // Node-splitting redirects (Section 9).
    auto RIt = Plan.RingRedirects.find(S);
    if (RIt != Plan.RingRedirects.end())
      return evalRingRead(S, RIt->second);
    auto SIt = Plan.SnapRedirects.find(S);
    if (SIt != Plan.SnapRedirects.end())
      return evalSnapshotRead(S, SIt->second);

    const auto *Base = dyn_cast<VarExpr>(S->base());
    if (!Base) {
      fail("array expression too complex for compiled code");
      return Scalar::makeInt(0);
    }
    const DoubleArray *A = arrayNamed(Base->name());
    if (!A) {
      fail("unbound array '" + Base->name() + "' in compiled code");
      return Scalar::makeInt(0);
    }
    std::vector<int64_t> Index;
    if (!evalIndex(S->index(), Index))
      return Scalar::makeInt(0);
    size_t Linear;
    if (!readLinear(*A, Base->name(), Index, Linear))
      return Scalar::makeInt(0);
    if (ValidateReads && A == &Target && !Target.isDefined(Linear)) {
      fail("schedule violation: read of element not yet computed (linear "
           "index " +
           std::to_string(Linear) + ")");
      return Scalar::makeInt(0);
    }
    ++Stats.Loads;
    return Scalar::makeFloat((*A)[Linear]);
  }

  /// Ordinal (0-based) of loop \p M of \p Clause, shifted by \p Delta on
  /// loop \p Shifted.
  int64_t ordinalOf(const ClauseNode *Clause, size_t M, size_t Shifted,
                    int64_t Delta) {
    const LoopNode *L = Clause->loops()[M];
    auto It = Norm.find(L);
    assert(It != Norm.end() && "loop not active");
    int64_t N = It->second;
    if (M == Shifted)
      N -= Delta;
    return N - 1;
  }

  /// Linear ring slot the *saving* instance y = x - Distance*e_k wrote.
  size_t ringSlot(const RingSpec &R, size_t ShiftLevel, int64_t Delta) {
    const ClauseNode *C = R.Clause;
    int64_t Phase =
        ordinalOf(C, R.Level, ShiftLevel, Delta) % R.Depth;
    size_t Slot = static_cast<size_t>(Phase);
    for (size_t M = R.Level + 1; M < C->loops().size(); ++M) {
      size_t Extent =
          static_cast<size_t>(R.DeeperTrips[M - R.Level - 1]);
      Slot = Slot * Extent +
             static_cast<size_t>(ordinalOf(C, M, ShiftLevel, Delta));
    }
    return Slot;
  }

  Scalar evalRingRead(const ArraySubExpr *S, const RingRedirect &RR) {
    const RingSpec &R = Plan.Rings[RR.RingId];
    const ClauseNode *C = R.Clause;
    // Does the saving instance exist? norm(x_k) - d >= 1.
    const LoopNode *Carried = C->loops()[RR.Level];
    auto It = Norm.find(Carried);
    assert(It != Norm.end() && "carried loop not active");
    if (It->second - RR.Distance >= 1) {
      ++Stats.Loads;
      return Scalar::makeFloat(
          Rings[R.Id][ringSlot(R, RR.Level, RR.Distance)]);
    }
    // No saving instance: the element has not been overwritten yet; read
    // the array directly through the normal (non-redirected) path.
    const auto *Base = cast<VarExpr>(S->base());
    const DoubleArray *A = arrayNamed(Base->name());
    if (!A) {
      fail("unbound array '" + Base->name() + "'");
      return Scalar::makeInt(0);
    }
    std::vector<int64_t> Index;
    if (!evalIndex(S->index(), Index))
      return Scalar::makeInt(0);
    size_t Linear;
    if (!readLinear(*A, Base->name(), Index, Linear))
      return Scalar::makeInt(0);
    ++Stats.Loads;
    return Scalar::makeFloat((*A)[Linear]);
  }

  Scalar evalSnapshotRead(const ArraySubExpr *S, const SnapshotRedirect &SR) {
    const SnapshotSpec &Spec = Plan.Snapshots[SR.SnapId];
    std::vector<int64_t> Index;
    if (!evalIndex(S->index(), Index))
      return Scalar::makeInt(0);
    if (Index.size() != Spec.Region.size()) {
      fail("snapshot read rank mismatch");
      return Scalar::makeInt(0);
    }
    size_t Linear = 0;
    for (size_t D = 0; D != Index.size(); ++D) {
      auto [Lo, Hi] = Spec.Region[D];
      if (Index[D] < Lo || Index[D] > Hi) {
        fail("snapshot read outside the captured region");
        return Scalar::makeInt(0);
      }
      Linear = Linear * static_cast<size_t>(Hi - Lo + 1) +
               static_cast<size_t>(Index[D] - Lo);
    }
    ++Stats.Loads;
    return Scalar::makeFloat(Snaps[SR.SnapId][Linear]);
  }

  /// Fused folds: sum/product over a comprehension or range run as plain
  /// accumulator loops with zero allocation (Section 3.1).
  Scalar evalApply(const ApplyExpr *A) {
    const auto *Fn = dyn_cast<VarExpr>(A->fn());
    if (!Fn) {
      fail("higher-order application is not supported in compiled code");
      return Scalar::makeInt(0);
    }
    const std::string &Name = Fn->name();

    if ((Name == "sum" || Name == "product") && A->numArgs() == 1) {
      bool Mul = Name == "product";
      bool AnyFloat = false;
      int64_t IntAcc = Mul ? 1 : 0;
      double FloatAcc = Mul ? 1.0 : 0.0;
      FoldFn Accumulate = [&](Scalar V) {
        if (!V.isNumeric()) {
          fail(Name + " of a non-numeric element");
          return;
        }
        if (!AnyFloat && V.K == Scalar::Kind::Float) {
          AnyFloat = true;
          FloatAcc = static_cast<double>(IntAcc);
        }
        if (AnyFloat) {
          double X = V.asDouble();
          FloatAcc = Mul ? FloatAcc * X : FloatAcc + X;
        } else {
          IntAcc = Mul ? IntAcc * V.I : IntAcc + V.I;
        }
        ++Stats.FusedIters;
      };
      if (!foldOver(A->arg(0), Accumulate))
        return Scalar::makeInt(0);
      if (failed())
        return Scalar::makeInt(0);
      return AnyFloat ? Scalar::makeFloat(FloatAcc) : Scalar::makeInt(IntAcc);
    }

    // Scalar builtins.
    auto EvalNumeric = [&](unsigned I, Scalar &Out) {
      Out = eval(A->arg(I));
      if (failed())
        return false;
      if (!Out.isNumeric()) {
        fail(Name + " of a non-numeric value");
        return false;
      }
      return true;
    };
    if (Name == "abs" && A->numArgs() == 1) {
      Scalar V;
      if (!EvalNumeric(0, V))
        return Scalar::makeInt(0);
      if (V.K == Scalar::Kind::Int)
        return Scalar::makeInt(V.I < 0 ? -V.I : V.I);
      return Scalar::makeFloat(V.F < 0 ? -V.F : V.F);
    }
    if (Name == "sqrt" && A->numArgs() == 1) {
      Scalar V;
      if (!EvalNumeric(0, V))
        return Scalar::makeInt(0);
      return Scalar::makeFloat(std::sqrt(V.asDouble()));
    }
    if (Name == "intToFloat" && A->numArgs() == 1) {
      Scalar V;
      if (!EvalNumeric(0, V))
        return Scalar::makeInt(0);
      return Scalar::makeFloat(V.asDouble());
    }
    if ((Name == "min" || Name == "max") && A->numArgs() == 2) {
      Scalar L, R;
      if (!EvalNumeric(0, L) || !EvalNumeric(1, R))
        return Scalar::makeInt(0);
      if (L.K == Scalar::Kind::Int && R.K == Scalar::Kind::Int) {
        bool TakeL = Name == "min" ? L.I <= R.I : L.I >= R.I;
        return TakeL ? L : R;
      }
      bool TakeL = Name == "min" ? L.asDouble() <= R.asDouble()
                                 : L.asDouble() >= R.asDouble();
      return TakeL ? L : R;
    }
    fail("function '" + Name + "' is not supported in compiled code");
    return Scalar::makeInt(0);
  }

  /// Iterates the elements of a fold source (comprehension, range, or
  /// list literal) without materializing a list. Uses std::function to
  /// keep the recursion (foldOver <-> foldComp) monomorphic.
  using FoldFn = std::function<void(Scalar)>;
  bool foldOver(const Expr *Source, const FoldFn &Fn) {
    switch (Source->kind()) {
    case ExprKind::Range: {
      const auto *R = cast<RangeExpr>(Source);
      int64_t Lo, Hi, Step = 1;
      Scalar LoV = eval(R->lo());
      if (failed())
        return false;
      Scalar HiV = eval(R->hi());
      if (failed())
        return false;
      if (LoV.K != Scalar::Kind::Int || HiV.K != Scalar::Kind::Int) {
        fail("range bounds must be integers");
        return false;
      }
      Lo = LoV.I;
      Hi = HiV.I;
      if (R->hasSecond()) {
        Scalar SecondV = eval(R->second());
        if (failed())
          return false;
        if (SecondV.K != Scalar::Kind::Int) {
          fail("range step anchor must be an integer");
          return false;
        }
        Step = SecondV.I - Lo;
        if (Step == 0) {
          fail("range step of zero");
          return false;
        }
      }
      if (Step > 0)
        for (int64_t I = Lo; I <= Hi && !failed(); I += Step)
          Fn(Scalar::makeInt(I));
      else
        for (int64_t I = Lo; I >= Hi && !failed(); I += Step)
          Fn(Scalar::makeInt(I));
      return !failed();
    }
    case ExprKind::List: {
      for (const ExprPtr &Elem : cast<ListExpr>(Source)->elems()) {
        Fn(eval(Elem.get()));
        if (failed())
          return false;
      }
      return true;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(Source);
      if (B->op() != BinaryOpKind::Append)
        break;
      return foldOver(B->lhs(), Fn) && foldOver(B->rhs(), Fn);
    }
    case ExprKind::Comp:
      return foldComp(cast<CompExpr>(Source), 0, Fn);
    default:
      break;
    }
    fail("fold source is not a comprehension, range, or list");
    return false;
  }

  bool foldComp(const CompExpr *C, size_t QualIndex, const FoldFn &Fn) {
    if (failed())
      return false;
    if (QualIndex == C->quals().size()) {
      if (C->isNested())
        return foldOver(C->head(), Fn);
      Fn(eval(C->head()));
      return !failed();
    }
    const CompQual &Q = C->quals()[QualIndex];
    switch (Q.kind()) {
    case CompQual::Kind::Generator: {
      size_t Mark = Scope.size();
      Scope.emplace_back(Q.var(), Scalar::makeInt(0));
      FoldFn Step = [&](Scalar V) {
        Scope.back().second = V;
        // The generator variable stays on top of the scope.
        foldComp(C, QualIndex + 1, Fn);
      };
      bool OK = foldOver(Q.source(), Step);
      Scope.resize(Mark);
      return OK && !failed();
    }
    case CompQual::Kind::Guard: {
      Scalar V = eval(Q.cond());
      if (failed())
        return false;
      if (V.K != Scalar::Kind::Bool) {
        fail("guard is not a boolean");
        return false;
      }
      if (!V.B)
        return true;
      return foldComp(C, QualIndex + 1, Fn);
    }
    case CompQual::Kind::LetQual: {
      size_t Mark = Scope.size();
      for (const LetBind &B : Q.binds()) {
        Scalar V = eval(B.Value.get());
        if (failed())
          return false;
        Scope.emplace_back(B.Name, V);
      }
      bool OK = foldComp(C, QualIndex + 1, Fn);
      Scope.resize(Mark);
      return OK;
    }
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Statement execution
  //===--------------------------------------------------------------------===//

  void execStmts(const std::vector<PlanStmt> &Stmts) {
    for (const PlanStmt &S : Stmts) {
      if (failed())
        return;
      if (S.K == PlanStmt::Kind::For)
        execFor(S);
      else
        execStore(S);
    }
  }

  void execFor(const PlanStmt &S) {
    const LoopBounds &B = S.Loop->bounds();
    int64_t M = B.tripCount();
    size_t Mark = Scope.size();
    Scope.emplace_back(S.Loop->var(), Scalar::makeInt(0));
    for (int64_t T = 1; T <= M && !failed(); ++T) {
      int64_t Pos = S.Backward ? M - T + 1 : T;
      int64_t Value = B.Lo + (Pos - 1) * B.Step;
      Scope.back().second = Scalar::makeInt(Value);
      Norm[S.Loop] = Pos;
      execStmts(S.Body);
    }
    Norm.erase(S.Loop);
    Scope.resize(Mark);
  }

  void execStore(const PlanStmt &S) {
    const ClauseNode *C = S.Clause;
    // Guards: outermost first; a false guard skips the instance.
    for (const GuardNode *G : C->guards()) {
      ++Stats.GuardEvals;
      Scalar V = eval(G->cond());
      if (failed())
        return;
      if (V.K != Scalar::Kind::Bool) {
        fail("guard is not a boolean");
        return;
      }
      if (!V.B)
        return;
    }

    std::vector<int64_t> Index;
    Index.reserve(C->rank());
    for (unsigned D = 0; D != C->rank(); ++D) {
      Scalar V = eval(C->subscript(D));
      if (failed())
        return;
      if (V.K != Scalar::Kind::Int) {
        fail("array subscript is not an integer");
        return;
      }
      Index.push_back(V.I);
    }

    Scalar Value = eval(C->value());
    if (failed())
      return;
    if (!Value.isNumeric()) {
      fail("array element value is not numeric");
      return;
    }

    size_t Linear;
    if (Plan.CheckStoreBounds)
      ++Stats.BoundsChecks;
    if (!Target.linearize(Index.data(), Index.size(), Linear)) {
      fail("array definition out of bounds");
      return;
    }
    if (Plan.CheckCollisions) {
      ++Stats.CollisionChecks;
      if (Target.hasDefinedBits() && Target.isDefined(Linear)) {
        fail("multiple definitions for one array element (write collision)"
             " at linear index " +
             std::to_string(Linear));
        return;
      }
    }
    if (S.SaveRingId >= 0) {
      const RingSpec &R = Plan.Rings[S.SaveRingId];
      Rings[R.Id][ringSlot(R, /*ShiftLevel=*/~0u, 0)] = Target[Linear];
      ++Stats.RingSaves;
    }
    Target[Linear] = Value.asDouble();
    Target.setDefined(Linear);
    ++Stats.Stores;
  }
};

} // namespace

bool TreeWalkExecutor::run(const ExecPlan &Plan, DoubleArray &Target,
                           std::string &Err) {
  Runner R(Plan, Target, Params, Inputs, Stats, ValidateReads);
  return R.run(Err);
}
