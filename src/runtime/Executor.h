//===- runtime/Executor.h - Thunkless plan execution ------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes ExecPlans against flat DoubleArray storage: the thunkless
/// evaluation path. Scalar expressions are evaluated directly (ints,
/// doubles, booleans — no boxes, no thunks); `sum`/`product` over
/// comprehensions run as fused accumulator loops with no intermediate
/// lists (the foldl fusion of Section 3.1); node-splitting ring buffers
/// and snapshots are consulted transparently for redirected reads.
///
/// Instrumentation counters expose exactly the costs the paper's
/// optimizations target, so benchmarks can compare against the thunked
/// interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_EXECUTOR_H
#define HAC_RUNTIME_EXECUTOR_H

#include "codegen/ExecPlan.h"
#include "runtime/DoubleArray.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hac {

/// Cost counters for one or more plan executions.
struct ExecStats {
  uint64_t Stores = 0;
  uint64_t Loads = 0;          ///< array element reads
  uint64_t RingSaves = 0;      ///< node-splitting old-value saves
  uint64_t SnapshotCopies = 0; ///< node-splitting pre-pass copies
  uint64_t BoundsChecks = 0;
  uint64_t CollisionChecks = 0;
  uint64_t GuardEvals = 0;
  uint64_t FusedIters = 0; ///< iterations of fused fold loops
  uint64_t TempBytes = 0;  ///< peak bytes of node-splitting temporaries
};

/// Executes plans. One executor may run many plans; stats accumulate
/// until reset.
class Executor {
public:
  explicit Executor(ParamEnv Params = {});

  /// Makes an input array visible to clause values under \p Name.
  void bindInput(const std::string &Name, const DoubleArray *Array);

  /// When set, every read of the target array checks the defined bitmap —
  /// a validation mode used by the schedule-safety property tests.
  void setValidateReads(bool V) { ValidateReads = V; }

  /// Runs \p Plan against \p Target. For construction plans the target
  /// must be freshly constructed with Plan.Dims; for in-place updates it
  /// holds the old contents. Returns false with \p Err set on a runtime
  /// error (failed check, unsupported expression, ...).
  bool run(const ExecPlan &Plan, DoubleArray &Target, std::string &Err);

  ExecStats &stats() { return Stats; }
  const ExecStats &stats() const { return Stats; }
  void resetStats() { Stats = ExecStats(); }

private:
  ParamEnv Params;
  std::map<std::string, const DoubleArray *> Inputs;
  ExecStats Stats;
  bool ValidateReads = false;
};

} // namespace hac

#endif // HAC_RUNTIME_EXECUTOR_H
