//===- runtime/Executor.h - LIR plan execution ------------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes ExecPlans against flat DoubleArray storage: the thunkless
/// evaluation path. Each plan is lowered once to the unified Loop IR
/// (src/lir/), optimized, and cached; the hot path is then the compact
/// LIREval register machine — no per-element AST dispatch, no name
/// lookups, no re-derived multiply chains. Semantics (evaluation order,
/// runtime error messages, ExecStats counters) match the seed
/// tree-walking executor, which survives as TreeWalkExecutor for the
/// bench_lir ablation.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_EXECUTOR_H
#define HAC_RUNTIME_EXECUTOR_H

#include "codegen/ExecPlan.h"
#include "jit/Jit.h"
#include "runtime/DoubleArray.h"
#include "runtime/ExecStats.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hac {

namespace par {
class ThreadPool;
}
namespace jit {
class JitCompiler;
}

struct LIRCacheImpl;

/// Per-executor tallies of the tiered-execution decisions (mirrored
/// onto the jit.* trace counters as they happen).
struct JitExecStats {
  uint64_t NativeRuns = 0; ///< runs executed by a compiled kernel
  uint64_t InterpRuns = 0; ///< runs executed by the LIR evaluator
  uint64_t TierSwaps = 0;  ///< plans that interpreted first, then went native
  uint64_t Fallbacks = 0;  ///< kernels that failed to build (warned once each)
};

/// Counters of the per-executor lowered-LIR cache (mirrored onto the
/// trace counters `lir.cache.{hits,misses,evictions}`).
struct LIRCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  size_t Entries = 0;
  size_t Capacity = 0;
};

/// Executes plans. One executor may run many plans; stats accumulate
/// until reset. Lowered LIR is cached per (plan, shapes, mode) inside
/// the executor instance.
class Executor {
public:
  explicit Executor(ParamEnv Params = {});

  /// Makes an input array visible to clause values under \p Name.
  void bindInput(const std::string &Name, const DoubleArray *Array);

  /// Forgets every bound input. Module evaluation rebinds arrays into
  /// pool storage each run; stale bindings from an earlier run would
  /// dangle once that run's pool is destroyed.
  void clearInputs() { Inputs.clear(); }

  /// When set, every read of the target array checks the defined bitmap —
  /// a validation mode used by the schedule-safety property tests.
  void setValidateReads(bool V) { ValidateReads = V; }

  /// Disables the LIR optimization passes (strength reduction, LICM,
  /// check hoisting, DCE). On by default; bench_lir flips this for the
  /// passes-off ablation.
  void setLIROptimize(bool V) { LIROptimize = V; }

  /// Disables the abstract-interpretation second-chance check
  /// elimination that runs after the optimization passes. On by
  /// default; bench_checks flips this to measure residual checks.
  void setLIRSecondChance(bool V) { LIRSecondChance = V; }

  /// Sets the worker count for parallel loop execution. 1 (the default)
  /// keeps the fully serial pipeline — par flags are stripped before
  /// the optimization passes, so single-threaded LIR is byte-identical
  /// to the pre-parallel one. 0 picks the HAC_THREADS environment
  /// override or else std::thread::hardware_concurrency(). The lazily
  /// created thread pool is shared across runs of this executor.
  void setNumThreads(unsigned N);
  unsigned numThreads() const { return Threads; }

  /// Execution-tier policy (default: the HAC_JIT environment policy,
  /// i.e. Off unless HAC_JIT=sync|async). Sync compiles a native kernel
  /// before a plan's first run; Async keeps interpreting while cc runs
  /// on the pool's background lane and hot-swaps once the kernel is
  /// ready. Either way results are bit-identical to the evaluator:
  /// kernels render the same post-pass LIR, execute the same residual
  /// checks, and report the same ExecStats counter block. Plans without
  /// a builder Id (not LIR-cacheable) and validate-reads runs always
  /// interpret.
  void setJitMode(jit::JitMode M) { JitM = M; }
  jit::JitMode jitMode() const { return JitM; }

  /// Overrides the kernel compiler (default: JitCompiler::global()).
  /// Tests inject instances pointed at scratch cache directories; the
  /// pointer is borrowed and must outlive the executor's runs.
  void setJitCompiler(jit::JitCompiler *C) { JitC = C; }

  /// Tier decisions made so far (native vs interpreted runs, hot swaps,
  /// build-failure fallbacks).
  const JitExecStats &jitStats() const { return JitE; }

  /// Runs \p Plan against \p Target. For construction plans the target
  /// must be freshly constructed with Plan.Dims; for in-place updates it
  /// holds the old contents. Returns false with \p Err set on a runtime
  /// error (failed check, unsupported expression, ...).
  bool run(const ExecPlan &Plan, DoubleArray &Target, std::string &Err);

  ExecStats &stats() { return Stats; }
  const ExecStats &stats() const { return Stats; }
  void resetStats() { Stats = ExecStats(); }

  /// Hit/miss/eviction counters of the LIR cache. The capacity comes
  /// from HAC_PLAN_CACHE (default 64, minimum 1); module runs compile
  /// many plans, so the cache is LRU-bounded instead of unbounded.
  LIRCacheStats lirCacheStats() const;

private:
  bool runImpl(const ExecPlan &Plan, DoubleArray &Target, std::string &Err);

  ParamEnv Params;
  std::map<std::string, const DoubleArray *> Inputs;
  ExecStats Stats;
  bool ValidateReads = false;
  bool LIROptimize = true;
  bool LIRSecondChance = true;
  unsigned Threads = 1;
  jit::JitMode JitM;
  jit::JitCompiler *JitC = nullptr; ///< null means JitCompiler::global()
  JitExecStats JitE;
  std::shared_ptr<par::ThreadPool> Pool;
  std::shared_ptr<LIRCacheImpl> Cache;
};

} // namespace hac

#endif // HAC_RUNTIME_EXECUTOR_H
