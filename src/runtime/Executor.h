//===- runtime/Executor.h - LIR plan execution ------------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes ExecPlans against flat DoubleArray storage: the thunkless
/// evaluation path. Each plan is lowered once to the unified Loop IR
/// (src/lir/), optimized, and cached; the hot path is then the compact
/// LIREval register machine — no per-element AST dispatch, no name
/// lookups, no re-derived multiply chains. Semantics (evaluation order,
/// runtime error messages, ExecStats counters) match the seed
/// tree-walking executor, which survives as TreeWalkExecutor for the
/// bench_lir ablation.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_EXECUTOR_H
#define HAC_RUNTIME_EXECUTOR_H

#include "codegen/ExecPlan.h"
#include "runtime/DoubleArray.h"
#include "runtime/ExecStats.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hac {

namespace par {
class ThreadPool;
}

struct LIRCacheImpl;

/// Counters of the per-executor lowered-LIR cache (mirrored onto the
/// trace counters `lir.cache.{hits,misses,evictions}`).
struct LIRCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  size_t Entries = 0;
  size_t Capacity = 0;
};

/// Executes plans. One executor may run many plans; stats accumulate
/// until reset. Lowered LIR is cached per (plan, shapes, mode) inside
/// the executor instance.
class Executor {
public:
  explicit Executor(ParamEnv Params = {});

  /// Makes an input array visible to clause values under \p Name.
  void bindInput(const std::string &Name, const DoubleArray *Array);

  /// Forgets every bound input. Module evaluation rebinds arrays into
  /// pool storage each run; stale bindings from an earlier run would
  /// dangle once that run's pool is destroyed.
  void clearInputs() { Inputs.clear(); }

  /// When set, every read of the target array checks the defined bitmap —
  /// a validation mode used by the schedule-safety property tests.
  void setValidateReads(bool V) { ValidateReads = V; }

  /// Disables the LIR optimization passes (strength reduction, LICM,
  /// check hoisting, DCE). On by default; bench_lir flips this for the
  /// passes-off ablation.
  void setLIROptimize(bool V) { LIROptimize = V; }

  /// Disables the abstract-interpretation second-chance check
  /// elimination that runs after the optimization passes. On by
  /// default; bench_checks flips this to measure residual checks.
  void setLIRSecondChance(bool V) { LIRSecondChance = V; }

  /// Sets the worker count for parallel loop execution. 1 (the default)
  /// keeps the fully serial pipeline — par flags are stripped before
  /// the optimization passes, so single-threaded LIR is byte-identical
  /// to the pre-parallel one. 0 picks the HAC_THREADS environment
  /// override or else std::thread::hardware_concurrency(). The lazily
  /// created thread pool is shared across runs of this executor.
  void setNumThreads(unsigned N);
  unsigned numThreads() const { return Threads; }

  /// Runs \p Plan against \p Target. For construction plans the target
  /// must be freshly constructed with Plan.Dims; for in-place updates it
  /// holds the old contents. Returns false with \p Err set on a runtime
  /// error (failed check, unsupported expression, ...).
  bool run(const ExecPlan &Plan, DoubleArray &Target, std::string &Err);

  ExecStats &stats() { return Stats; }
  const ExecStats &stats() const { return Stats; }
  void resetStats() { Stats = ExecStats(); }

  /// Hit/miss/eviction counters of the LIR cache. The capacity comes
  /// from HAC_PLAN_CACHE (default 64, minimum 1); module runs compile
  /// many plans, so the cache is LRU-bounded instead of unbounded.
  LIRCacheStats lirCacheStats() const;

private:
  bool runImpl(const ExecPlan &Plan, DoubleArray &Target, std::string &Err);

  ParamEnv Params;
  std::map<std::string, const DoubleArray *> Inputs;
  ExecStats Stats;
  bool ValidateReads = false;
  bool LIROptimize = true;
  bool LIRSecondChance = true;
  unsigned Threads = 1;
  std::shared_ptr<par::ThreadPool> Pool;
  std::shared_ptr<LIRCacheImpl> Cache;
};

} // namespace hac

#endif // HAC_RUNTIME_EXECUTOR_H
