//===- runtime/BufferPool.h - Slot-recycling array storage ------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for the intermediates of a module run. The module buffer
/// planner assigns every binding a slot; bindings whose live ranges are
/// disjoint share a slot, and acquiring a slot a dead binding used
/// recycles its heap allocation instead of mallocing fresh storage. The
/// pool also keeps the telemetry the module counters report: live/peak
/// logical bytes, fresh allocations, and reuses.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_BUFFERPOOL_H
#define HAC_RUNTIME_BUFFERPOOL_H

#include "runtime/DoubleArray.h"

#include <cstddef>
#include <vector>

namespace hac {

/// Fixed-slot array storage with reuse telemetry. Slots are assigned
/// statically by the module buffer planner; the pool only materializes
/// and recycles them.
class BufferPool {
public:
  explicit BufferPool(unsigned NumSlots)
      : Slots(NumSlots), Live(NumSlots, 0), Used(NumSlots, 0) {}

  unsigned numSlots() const { return static_cast<unsigned>(Slots.size()); }

  /// Returns slot \p Slot re-shaped (and zero-filled) for \p Dims. A
  /// first acquire of a slot is a fresh allocation; later acquires
  /// recycle the previous occupant's storage and count as reuses.
  DoubleArray &acquire(unsigned Slot, const DoubleArray::Dims &Dims);

  /// Folds storage held outside the pool (the module result array) into
  /// the live/peak byte accounting.
  void noteExternal(size_t Bytes);

  size_t liveBytes() const { return CurBytes; }
  size_t peakBytes() const { return PeakBytes; }
  unsigned allocations() const { return Allocations; }
  unsigned reuses() const { return Reuses; }

private:
  std::vector<DoubleArray> Slots;
  /// Logical bytes currently attributed to each slot.
  std::vector<size_t> Live;
  std::vector<char> Used;
  size_t CurBytes = 0;
  size_t PeakBytes = 0;
  unsigned Allocations = 0;
  unsigned Reuses = 0;
};

} // namespace hac

#endif // HAC_RUNTIME_BUFFERPOOL_H
