//===- runtime/TreeExec.h - Seed tree-walking executor ----------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original tree-walking plan executor, preserved verbatim as the
/// baseline for the bench_lir ablation: it re-walks the clause-value AST
/// for every element (per-node switch dispatch, name-keyed scope
/// lookups, re-derived row-major multiply chains). The production
/// Executor now runs lowered LIR instead; this class exists so the
/// "LIR evaluator vs seed tree-walker" speedup stays measurable.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_TREEEXEC_H
#define HAC_RUNTIME_TREEEXEC_H

#include "codegen/ExecPlan.h"
#include "runtime/DoubleArray.h"
#include "runtime/ExecStats.h"

#include <map>
#include <string>

namespace hac {

/// Executes plans by walking the AST per element (the seed Executor).
/// Same interface and semantics as Executor; kept for benchmarking.
class TreeWalkExecutor {
public:
  explicit TreeWalkExecutor(ParamEnv Params = {})
      : Params(std::move(Params)) {}

  void bindInput(const std::string &Name, const DoubleArray *Array) {
    Inputs[Name] = Array;
  }
  void setValidateReads(bool V) { ValidateReads = V; }

  bool run(const ExecPlan &Plan, DoubleArray &Target, std::string &Err);

  ExecStats &stats() { return Stats; }
  const ExecStats &stats() const { return Stats; }
  void resetStats() { Stats = ExecStats(); }

private:
  ParamEnv Params;
  std::map<std::string, const DoubleArray *> Inputs;
  ExecStats Stats;
  bool ValidateReads = false;
};

} // namespace hac

#endif // HAC_RUNTIME_TREEEXEC_H
