//===- runtime/BufferPool.cpp - Slot-recycling array storage --------------===//

#include "runtime/BufferPool.h"

#include <cassert>

using namespace hac;

DoubleArray &BufferPool::acquire(unsigned Slot,
                                 const DoubleArray::Dims &Dims) {
  assert(Slot < Slots.size() && "buffer pool slot out of range");
  size_t Elems = 1;
  for (const auto &[Lo, Hi] : Dims)
    Elems *= Hi >= Lo ? static_cast<size_t>(Hi - Lo + 1) : 0;
  size_t Bytes = Elems * sizeof(double);

  if (Used[Slot]) {
    ++Reuses;
    CurBytes -= Live[Slot];
  } else {
    ++Allocations;
    Used[Slot] = 1;
  }
  Slots[Slot].reset(Dims);
  Live[Slot] = Bytes;
  CurBytes += Bytes;
  if (CurBytes > PeakBytes)
    PeakBytes = CurBytes;
  return Slots[Slot];
}

void BufferPool::noteExternal(size_t Bytes) {
  CurBytes += Bytes;
  if (CurBytes > PeakBytes)
    PeakBytes = CurBytes;
}
