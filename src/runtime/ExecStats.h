//===- runtime/ExecStats.h - Execution cost counters ------------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost counters for plan executions, shared by the LIR evaluator and
/// the Executor shell. Counter semantics are pinned by the runtime
/// tests: they count the same events the seed tree-walking executor
/// counted, regardless of how the LIR optimizer rearranges the code.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_EXECSTATS_H
#define HAC_RUNTIME_EXECSTATS_H

#include <cstdint>

namespace hac {

/// Cost counters for one or more plan executions.
struct ExecStats {
  uint64_t Stores = 0;
  uint64_t Loads = 0;          ///< array element reads
  uint64_t RingSaves = 0;      ///< node-splitting old-value saves
  uint64_t SnapshotCopies = 0; ///< node-splitting pre-pass copies
  uint64_t BoundsChecks = 0;
  uint64_t CollisionChecks = 0;
  uint64_t GuardEvals = 0;
  uint64_t FusedIters = 0; ///< iterations of fused fold loops
  uint64_t TempBytes = 0;  ///< peak bytes of node-splitting temporaries
};

} // namespace hac

#endif // HAC_RUNTIME_EXECSTATS_H
