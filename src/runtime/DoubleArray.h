//===- runtime/DoubleArray.h - Flat numeric array storage -------*- C++ -*-===//
//
// Part of the hac project (Anderson & Hudak, PLDI 1990 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thunkless array representation: a flat buffer of doubles with
/// row-major layout and an optional "defined" bitmap used only when the
/// collision / empties analyses could not discharge the runtime checks
/// (Sections 4 and 7). This is what "performance comparable to Fortran"
/// concretely means: direct stores and loads, no per-element boxes.
///
//===----------------------------------------------------------------------===//

#ifndef HAC_RUNTIME_DOUBLEARRAY_H
#define HAC_RUNTIME_DOUBLEARRAY_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hac {

/// An N-dimensional array of doubles with inclusive per-dimension bounds.
class DoubleArray {
public:
  using Dims = std::vector<std::pair<int64_t, int64_t>>;

  DoubleArray() = default;
  explicit DoubleArray(Dims TheDims) : Bounds(std::move(TheDims)) {
    size_t Size = 1;
    for (const auto &[Lo, Hi] : Bounds)
      Size *= Hi >= Lo ? static_cast<size_t>(Hi - Lo + 1) : 0;
    Data.assign(Size, 0.0);
  }

  /// Re-shapes to \p TheDims, reusing the existing heap allocation when
  /// its capacity suffices (the module buffer pool recycles dead
  /// intermediates this way). Elements are zero-filled and the defined
  /// bitmap is dropped — observationally identical to constructing a
  /// fresh DoubleArray(TheDims).
  void reset(Dims TheDims) {
    Bounds = std::move(TheDims);
    size_t Size = 1;
    for (const auto &[Lo, Hi] : Bounds)
      Size *= Hi >= Lo ? static_cast<size_t>(Hi - Lo + 1) : 0;
    Data.assign(Size, 0.0);
    DefinedBits.clear();
  }

  const Dims &dims() const { return Bounds; }
  unsigned rank() const { return Bounds.size(); }
  size_t size() const { return Data.size(); }

  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  double &operator[](size_t Linear) { return Data[Linear]; }
  double operator[](size_t Linear) const { return Data[Linear]; }

  /// Row-major linearization; returns false when out of bounds.
  bool linearize(const int64_t *Index, size_t Rank, size_t &Out) const {
    if (Rank != Bounds.size())
      return false;
    size_t Linear = 0;
    for (size_t D = 0; D != Rank; ++D) {
      auto [Lo, Hi] = Bounds[D];
      if (Index[D] < Lo || Index[D] > Hi)
        return false;
      Linear = Linear * static_cast<size_t>(Hi - Lo + 1) +
               static_cast<size_t>(Index[D] - Lo);
    }
    Out = Linear;
    return true;
  }

  /// Row-major linearization without per-dimension bounds compares, for
  /// reads the read-bounds analysis proved in bounds. The caller vouches
  /// for Rank == rank() and Lo <= Index[D] <= Hi in every dimension.
  size_t linearizeUnchecked(const int64_t *Index, size_t Rank) const {
    assert(Rank == Bounds.size() && "rank mismatch in unchecked access");
    size_t Linear = 0;
    for (size_t D = 0; D != Rank; ++D) {
      auto [Lo, Hi] = Bounds[D];
      assert(Index[D] >= Lo && Index[D] <= Hi &&
             "proven-in-bounds read is out of bounds");
      Linear = Linear * static_cast<size_t>(Hi - Lo + 1) +
               static_cast<size_t>(Index[D] - Lo);
    }
    return Linear;
  }

  /// Convenience element access for tests (asserts in-bounds).
  double at(std::initializer_list<int64_t> Index) const {
    size_t Linear = 0;
    bool OK = linearize(Index.begin(), Index.size(), Linear);
    assert(OK && "DoubleArray::at out of bounds");
    (void)OK;
    return Data[Linear];
  }
  void set(std::initializer_list<int64_t> Index, double V) {
    size_t Linear = 0;
    bool OK = linearize(Index.begin(), Index.size(), Linear);
    assert(OK && "DoubleArray::set out of bounds");
    (void)OK;
    Data[Linear] = V;
  }

  /// Enables the defined bitmap (all elements undefined).
  void enableDefinedBits() { DefinedBits.assign(Data.size(), 0); }
  /// Marks every element defined (used for update targets).
  void markAllDefined() { DefinedBits.assign(Data.size(), 1); }
  bool hasDefinedBits() const { return !DefinedBits.empty(); }
  bool isDefined(size_t Linear) const {
    return DefinedBits.empty() || DefinedBits[Linear] != 0;
  }
  void setDefined(size_t Linear) {
    if (!DefinedBits.empty())
      DefinedBits[Linear] = 1;
  }
  /// Raw defined-bitmap storage (one byte per element), or null when
  /// the bitmap is disabled. Native JIT kernels update it in place.
  uint8_t *definedData() {
    return DefinedBits.empty() ? nullptr : DefinedBits.data();
  }
  const uint8_t *definedData() const {
    return DefinedBits.empty() ? nullptr : DefinedBits.data();
  }
  /// Index of the first undefined element, or size() if none.
  size_t firstUndefined() const {
    for (size_t I = 0; I != DefinedBits.size(); ++I)
      if (!DefinedBits[I])
        return I;
    return Data.size();
  }

  /// Maximum absolute elementwise difference (arrays must be same shape).
  static double maxAbsDiff(const DoubleArray &A, const DoubleArray &B) {
    assert(A.size() == B.size() && "shape mismatch");
    double Max = 0;
    for (size_t I = 0; I != A.size(); ++I) {
      double D = A[I] - B[I];
      if (D < 0)
        D = -D;
      if (D > Max)
        Max = D;
    }
    return Max;
  }

private:
  Dims Bounds;
  std::vector<double> Data;
  std::vector<uint8_t> DefinedBits;
};

} // namespace hac

#endif // HAC_RUNTIME_DOUBLEARRAY_H
